//===- tests/js_interp_test.cpp - MiniJS interpreter tests ----------------===//

#include "js/Interpreter.h"
#include "js/Parser.h"
#include "js/StdLib.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::js;

namespace {

class InterpTest : public ::testing::Test {
protected:
  InterpTest() : Global(TheHeap.allocEnv(nullptr)), Interp(TheHeap, Global) {
    installStdLib(Interp, 1);
  }

  /// Runs a program; returns its completion. The AST stays alive for the
  /// fixture's lifetime (function values point into it).
  Completion run(std::string_view Src) {
    ParseResult R = Parser::parseProgram(Src);
    EXPECT_TRUE(R.ok()) << (R.Diags.empty() ? "?" : R.Diags[0].Message);
    if (!R.Ast)
      return Completion::normal();
    Programs.push_back(std::move(R.Ast));
    return Interp.runProgram(*Programs.back());
  }

  /// Runs and returns the value of global `result`.
  Value result(std::string_view Src) {
    Completion C = run(Src);
    EXPECT_FALSE(C.isThrow()) << toDisplayString(C.V);
    Value *V = Global->findOwn("result");
    return V ? *V : Value();
  }

  double num(std::string_view Src) {
    Value V = result(Src);
    EXPECT_TRUE(V.isNumber()) << toDisplayString(V);
    return V.isNumber() ? V.asNumber() : 0;
  }

  std::string str(std::string_view Src) {
    Value V = result(Src);
    EXPECT_TRUE(V.isString()) << toDisplayString(V);
    return V.isString() ? V.asString() : "";
  }

  Heap TheHeap;
  Env *Global;
  Interpreter Interp;
  std::vector<std::unique_ptr<Program>> Programs;
};

TEST_F(InterpTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(num("var result = 1 + 2 * 3 - 4 / 2;"), 5);
  EXPECT_DOUBLE_EQ(num("var result = 7 % 3;"), 1);
  EXPECT_DOUBLE_EQ(num("var result = (1 + 2) * 3;"), 9);
}

TEST_F(InterpTest, StringConcat) {
  EXPECT_EQ(str("var result = 'a' + 'b' + 1;"), "ab1");
  EXPECT_EQ(str("var result = 1 + 2 + 'x';"), "3x");
  EXPECT_EQ(str("var result = 'v=' + 2.5;"), "v=2.5");
}

TEST_F(InterpTest, Comparisons) {
  EXPECT_EQ(result("var result = 1 < 2;").asBool(), true);
  EXPECT_EQ(result("var result = 'a' < 'b';").asBool(), true);
  EXPECT_EQ(result("var result = 2 == '2';").asBool(), true);
  EXPECT_EQ(result("var result = 2 === '2';").asBool(), false);
  EXPECT_EQ(result("var result = null == undefined;").asBool(), true);
  EXPECT_EQ(result("var result = null === undefined;").asBool(), false);
  EXPECT_EQ(result("var result = NaN == NaN;").asBool(), false);
}

TEST_F(InterpTest, LogicalShortCircuit) {
  EXPECT_DOUBLE_EQ(num("var result = 0 || 5;"), 5);
  EXPECT_DOUBLE_EQ(num("var result = 3 && 7;"), 7);
  EXPECT_DOUBLE_EQ(
      num("var x = 0; function f() { x = 1; return 2; } var result = 1 || "
          "f(); result = result + x * 10;"),
      1); // f never ran
}

TEST_F(InterpTest, VarHoisting) {
  // `x` is visible (undefined) before its declaration executes.
  EXPECT_EQ(str("var result = typeof x; var x = 3;"), "undefined");
}

TEST_F(InterpTest, FunctionHoisting) {
  // Calling before the declaration works: function declarations are
  // assigned at scope entry (paper Sec. 4.1).
  EXPECT_DOUBLE_EQ(num("var result = f(); function f() { return 11; }"), 11);
}

TEST_F(InterpTest, Closures) {
  EXPECT_DOUBLE_EQ(num(R"(
    function counter() {
      var n = 0;
      return function() { n = n + 1; return n; };
    }
    var c = counter();
    c(); c();
    var result = c();
  )"),
                   3);
}

TEST_F(InterpTest, ClosuresShareEnvironment) {
  EXPECT_DOUBLE_EQ(num(R"(
    function make() {
      var n = 0;
      return {
        inc: function() { n = n + 1; },
        get: function() { return n; }
      };
    }
    var o = make();
    o.inc(); o.inc(); o.inc();
    var result = o.get();
  )"),
                   3);
}

TEST_F(InterpTest, Recursion) {
  EXPECT_DOUBLE_EQ(num(R"(
    function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); }
    var result = fact(10);
  )"),
                   3628800);
}

TEST_F(InterpTest, RecursionDepthLimit) {
  Completion C = run("function f() { return f(); } f();");
  EXPECT_TRUE(C.isThrow());
  EXPECT_NE(toDisplayString(C.V).find("RangeError"), std::string::npos);
}

TEST_F(InterpTest, Objects) {
  EXPECT_DOUBLE_EQ(num(R"(
    var o = {a: 1, b: {c: 2}};
    o.d = o.a + o.b.c;
    var result = o.d;
  )"),
                   3);
}

TEST_F(InterpTest, ObjectPropertyDelete) {
  EXPECT_EQ(str(R"(
    var o = {a: 1};
    delete o.a;
    var result = typeof o.a;
  )"),
            "undefined");
}

TEST_F(InterpTest, Arrays) {
  EXPECT_DOUBLE_EQ(num(R"(
    var a = [1, 2, 3];
    a.push(4);
    a[5] = 6;
    var result = a.length + a[3];
  )"),
                   10);
}

TEST_F(InterpTest, ArrayMethods) {
  EXPECT_EQ(str("var result = [1,2,3].join('-');"), "1-2-3");
  EXPECT_DOUBLE_EQ(num("var result = [5,6,7].indexOf(6);"), 1);
  EXPECT_DOUBLE_EQ(num("var a=[1,2,3,4]; var result = a.slice(1,3).length;"),
                   2);
  EXPECT_DOUBLE_EQ(num("var a=[1,2,3]; a.splice(1,1); var result = a[1];"),
                   3);
  EXPECT_DOUBLE_EQ(num("var a=[1]; var b=a.concat([2,3]); var result = "
                       "b.length;"),
                   3);
  EXPECT_DOUBLE_EQ(num("var a=[3,1]; a.reverse(); var result = a[0];"), 1);
  EXPECT_DOUBLE_EQ(num("var a=[1,2]; var result = a.pop() + a.length;"), 3);
  EXPECT_DOUBLE_EQ(num("var a=[1,2]; var result = a.shift() * 10 + "
                       "a.length;"),
                   11);
}

TEST_F(InterpTest, StringMethods) {
  EXPECT_EQ(str("var result = 'Hello'.toLowerCase();"), "hello");
  EXPECT_EQ(str("var result = 'hello'.toUpperCase();"), "HELLO");
  EXPECT_DOUBLE_EQ(num("var result = 'hello'.indexOf('ll');"), 2);
  EXPECT_EQ(str("var result = 'hello'.substring(1, 3);"), "el");
  EXPECT_EQ(str("var result = 'hello'.slice(-3);"), "llo");
  EXPECT_EQ(str("var result = 'a,b,c'.split(',')[1];"), "b");
  EXPECT_EQ(str("var result = 'aXbXc'.replace('X', '-');"), "a-bXc");
  EXPECT_EQ(str("var result = '  hi '.trim();"), "hi");
  EXPECT_EQ(str("var result = 'abc'.charAt(1);"), "b");
  EXPECT_DOUBLE_EQ(num("var result = 'abc'.length;"), 3);
  EXPECT_EQ(str("var result = 'abc'[2];"), "c");
}

TEST_F(InterpTest, ControlFlow) {
  EXPECT_DOUBLE_EQ(num(R"(
    var s = 0;
    for (var i = 1; i <= 10; i++) { if (i % 2 == 0) continue; s += i; }
    var result = s;
  )"),
                   25);
  EXPECT_DOUBLE_EQ(num(R"(
    var n = 0;
    while (true) { n++; if (n >= 7) break; }
    var result = n;
  )"),
                   7);
  EXPECT_DOUBLE_EQ(num("var n = 0; do { n++; } while (n < 3); var result = "
                       "n;"),
                   3);
}

TEST_F(InterpTest, ForIn) {
  EXPECT_EQ(str(R"(
    var o = {x: 1, y: 2};
    var keys = '';
    for (var k in o) keys += k;
    var result = keys;
  )"),
            "xy");
}

TEST_F(InterpTest, Switch) {
  EXPECT_EQ(str(R"(
    function f(v) {
      switch (v) {
      case 1: return 'one';
      case 2: return 'two';
      default: return 'many';
      }
    }
    var result = f(1) + f(2) + f(9);
  )"),
            "onetwomany");
}

TEST_F(InterpTest, SwitchFallthrough) {
  EXPECT_DOUBLE_EQ(num(R"(
    var n = 0;
    switch (2) { case 1: n += 1; case 2: n += 2; case 3: n += 4; }
    var result = n;
  )"),
                   6);
}

TEST_F(InterpTest, TryCatch) {
  EXPECT_EQ(str(R"(
    var result = 'no';
    try { null.x = 1; } catch (e) { result = e.name; }
  )"),
            "TypeError");
}

TEST_F(InterpTest, TryFinally) {
  EXPECT_EQ(str(R"(
    var log = '';
    function f() {
      try { log += 'a'; return 'r'; } finally { log += 'b'; }
    }
    f();
    var result = log;
  )"),
            "ab");
}

TEST_F(InterpTest, ThrowUserValue) {
  Completion C = run("throw 'boom';");
  EXPECT_TRUE(C.isThrow());
  EXPECT_EQ(toDisplayString(C.V), "boom");
}

TEST_F(InterpTest, UncaughtReferenceError) {
  Completion C = run("noSuchFunction();");
  EXPECT_TRUE(C.isThrow());
  EXPECT_NE(toDisplayString(C.V).find("ReferenceError"), std::string::npos);
}

TEST_F(InterpTest, TypeofUndeclaredDoesNotThrow) {
  EXPECT_EQ(str("var result = typeof neverDeclared;"), "undefined");
}

TEST_F(InterpTest, TypeofKinds) {
  EXPECT_EQ(str("var result = typeof 1;"), "number");
  EXPECT_EQ(str("var result = typeof 'x';"), "string");
  EXPECT_EQ(str("var result = typeof true;"), "boolean");
  EXPECT_EQ(str("var result = typeof {};"), "object");
  EXPECT_EQ(str("var result = typeof null;"), "object");
  EXPECT_EQ(str("var result = typeof function(){};"), "function");
  EXPECT_EQ(str("var result = typeof undefined;"), "undefined");
}

TEST_F(InterpTest, UpdateExpressions) {
  EXPECT_DOUBLE_EQ(num("var x = 5; var result = x++ * 10 + x;"), 56);
  EXPECT_DOUBLE_EQ(num("var x = 5; var result = ++x * 10 + x;"), 66);
  EXPECT_DOUBLE_EQ(num("var o = {n: 1}; o.n++; var result = o.n;"), 2);
  EXPECT_DOUBLE_EQ(num("var a = [7]; a[0]--; var result = a[0];"), 6);
}

TEST_F(InterpTest, CompoundAssignment) {
  EXPECT_DOUBLE_EQ(num("var x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; "
                       "var result = x;"),
                   2);
  EXPECT_EQ(str("var s = 'a'; s += 'b'; var result = s;"), "ab");
}

TEST_F(InterpTest, NewWithPrototype) {
  EXPECT_DOUBLE_EQ(num(R"(
    function Point(x, y) { this.x = x; this.y = y; }
    Point.prototype.norm2 = function() { return this.x * this.x + this.y *
    this.y; };
    var p = new Point(3, 4);
    var result = p.norm2();
  )"),
                   25);
}

TEST_F(InterpTest, InstanceOf) {
  EXPECT_EQ(result(R"(
    function A() {}
    var a = new A();
    var result = a instanceof A;
  )")
                .asBool(),
            true);
}

TEST_F(InterpTest, InOperator) {
  EXPECT_EQ(result("var result = 'a' in {a: 1};").asBool(), true);
  EXPECT_EQ(result("var result = 'b' in {a: 1};").asBool(), false);
  EXPECT_EQ(result("var result = '0' in [9];").asBool(), true);
}

TEST_F(InterpTest, CallAndApply) {
  EXPECT_DOUBLE_EQ(num(R"(
    function add(a, b) { return this.base + a + b; }
    var ctx = {base: 100};
    var result = add.call(ctx, 1, 2) + add.apply(ctx, [10, 20]);
  )"),
                   233);
}

TEST_F(InterpTest, MathBuiltins) {
  EXPECT_DOUBLE_EQ(num("var result = Math.floor(3.7) + Math.ceil(3.2);"), 7);
  EXPECT_DOUBLE_EQ(num("var result = Math.max(1, 5, 3) + Math.min(2, -1);"),
                   4);
  EXPECT_DOUBLE_EQ(num("var result = Math.abs(-4) + Math.sqrt(9);"), 7);
  EXPECT_DOUBLE_EQ(num("var result = Math.pow(2, 10);"), 1024);
}

TEST_F(InterpTest, MathRandomDeterministic) {
  double A = num("var result = Math.random();");
  EXPECT_GE(A, 0.0);
  EXPECT_LT(A, 1.0);
  // A second fixture with the same seed produces the same first sample.
  Heap H2;
  Env *G2 = H2.allocEnv(nullptr);
  Interpreter I2(H2, G2);
  installStdLib(I2, 1);
  ParseResult R = Parser::parseProgram("var result = Math.random();");
  ASSERT_TRUE(R.ok());
  I2.runProgram(*R.Ast);
  EXPECT_DOUBLE_EQ(G2->findOwn("result")->asNumber(), A);
}

TEST_F(InterpTest, ParseIntAndFloat) {
  EXPECT_DOUBLE_EQ(num("var result = parseInt('42px');"), 42);
  EXPECT_DOUBLE_EQ(num("var result = parseInt('ff', 16);"), 255);
  EXPECT_DOUBLE_EQ(num("var result = parseFloat('2.5rem');"), 2.5);
  EXPECT_EQ(result("var result = isNaN(parseInt('x'));").asBool(), true);
}

TEST_F(InterpTest, Conversions) {
  EXPECT_EQ(str("var result = String(42);"), "42");
  EXPECT_DOUBLE_EQ(num("var result = Number('3.5');"), 3.5);
  EXPECT_EQ(result("var result = Boolean('');").asBool(), false);
  EXPECT_EQ(result("var result = Boolean('x');").asBool(), true);
  EXPECT_DOUBLE_EQ(num("var result = Number('');"), 0);
  EXPECT_EQ(result("var result = isNaN(Number('abc'));").asBool(), true);
}

TEST_F(InterpTest, NumberFormatting) {
  EXPECT_EQ(str("var result = '' + 0.1;"), "0.1");
  EXPECT_EQ(str("var result = '' + 1e21;"), "1e+21");
  EXPECT_EQ(str("var result = '' + (1/0);"), "Infinity");
  EXPECT_EQ(str("var result = (1.23456).toFixed(2);"), "1.23");
}

TEST_F(InterpTest, ImplicitGlobalCreation) {
  EXPECT_DOUBLE_EQ(num("function f() { leaked = 9; } f(); var result = "
                       "leaked;"),
                   9);
}

TEST_F(InterpTest, StepBudgetTerminatesRunaways) {
  Interp.setStepBudget(10000);
  Completion C = run("while (true) {}");
  EXPECT_TRUE(C.isThrow());
  EXPECT_NE(toDisplayString(C.V).find("step budget"), std::string::npos);
}

TEST_F(InterpTest, JsonStringify) {
  EXPECT_EQ(str("var result = JSON.stringify({a: 1, b: 'x', c: [true, "
                "null]});"),
            "{\"a\":1,\"b\":\"x\",\"c\":[true,null]}");
  EXPECT_EQ(str("var result = JSON.stringify('he\\\"llo');"),
            "\"he\\\"llo\"");
  EXPECT_EQ(str("var result = JSON.stringify(42.5);"), "42.5");
}

TEST_F(InterpTest, JsonParse) {
  EXPECT_DOUBLE_EQ(num("var result = JSON.parse('{\"v\": 7}').v;"), 7);
  EXPECT_EQ(str("var o = JSON.parse('{\"a\": [1, \"two\", false], "
                "\"b\": null}'); var result = typeof o.b + o.a[1];"),
            "objecttwo");
  EXPECT_DOUBLE_EQ(num("var result = JSON.parse('[-1.5e2]')[0];"), -150);
}

TEST_F(InterpTest, JsonRoundTrip) {
  EXPECT_EQ(str("var o = {x: 1, y: {z: [1, 2, 3]}};"
                "var result = JSON.stringify(JSON.parse("
                "JSON.stringify(o)));"),
            "{\"x\":1,\"y\":{\"z\":[1,2,3]}}");
}

TEST_F(InterpTest, JsonParseErrorThrows) {
  EXPECT_EQ(str("var result = 'no';"
                "try { JSON.parse('{broken'); } catch (e) {"
                "  result = e.name; }"),
            "SyntaxError");
}

TEST_F(InterpTest, SequenceExpression) {
  EXPECT_DOUBLE_EQ(num("var x = (1, 2, 3); var result = x;"), 3);
}

TEST_F(InterpTest, SwitchDefaultBeforeCases) {
  // default in the middle: only entered when no case matches, but
  // fallthrough from it continues.
  EXPECT_EQ(str(R"(
    function f(v) {
      var out = '';
      switch (v) {
      case 1: out += 'a';
      default: out += 'd';
      case 2: out += 'b';
      }
      return out;
    }
    var result = f(1) + '/' + f(2) + '/' + f(9);
  )"),
            "adb/b/db");
}

TEST_F(InterpTest, TryFinallyAbruptOverride) {
  EXPECT_EQ(str(R"(
    function f() {
      try { throw 'inner'; }
      finally { return 'from-finally'; }
    }
    var result = f();
  )"),
            "from-finally");
}

TEST_F(InterpTest, NestedTryCatchRethrow) {
  EXPECT_EQ(str(R"(
    var result = '';
    try {
      try { throw 'x'; }
      catch (e) { result += 'inner:' + e + ' '; throw 'y'; }
    } catch (e2) { result += 'outer:' + e2; }
  )"),
            "inner:x outer:y");
}

TEST_F(InterpTest, ForInOverArrayIndices) {
  EXPECT_EQ(str(R"(
    var a = ['p', 'q'];
    a.extra = 1;
    var keys = '';
    for (var k in a) keys += k + ';';
    var result = keys;
  )"),
            "0;1;extra;");
}

TEST_F(InterpTest, BreakInsideSwitchInsideLoop) {
  EXPECT_DOUBLE_EQ(num(R"(
    var n = 0;
    for (var i = 0; i < 5; i++) {
      switch (i) { case 3: break; default: n++; }
    }
    var result = n;
  )"),
                   4); // break exits the switch, not the loop.
}

TEST_F(InterpTest, ClosureCapturesLoopVariableByReference) {
  // Classic var-capture bug: all closures see the final value.
  EXPECT_EQ(str(R"(
    var fns = [];
    for (var i = 0; i < 3; i++) { fns.push(function() { return i; }); }
    var result = '' + fns[0]() + fns[1]() + fns[2]();
  )"),
            "333");
}

TEST_F(InterpTest, DeleteArrayElementViaIndex) {
  EXPECT_EQ(str(R"(
    var o = {0: 'a', 1: 'b'};
    delete o[0];
    var result = (o[0] === undefined) + '/' + o[1];
  )"),
            "true/b");
}

TEST_F(InterpTest, StringComparisonChain) {
  EXPECT_EQ(str("var result = '' + ('apple' < 'banana') + ('b' >= 'b') +"
                "('z' <= 'a');"),
            "truetruefalse");
}

TEST_F(InterpTest, ThisInMethodCalls) {
  EXPECT_DOUBLE_EQ(num(R"(
    var obj = {
      v: 7,
      get: function() { return this.v; }
    };
    var result = obj.get();
  )"),
                   7);
}

TEST_F(InterpTest, PrototypeChainLookup) {
  EXPECT_EQ(str(R"(
    function Base() {}
    Base.prototype.kind = 'base';
    var o = new Base();
    var own = o.hasOwnProperty('kind');
    var result = o.kind + '/' + own;
  )"),
            "base/false");
}

TEST_F(InterpTest, BitwiseOps) {
  EXPECT_DOUBLE_EQ(num("var result = (5 & 3) + (5 | 3) + (5 ^ 3);"), 14);
  EXPECT_DOUBLE_EQ(num("var result = 1 << 4;"), 16);
  EXPECT_DOUBLE_EQ(num("var result = -8 >> 1;"), -4);
  EXPECT_DOUBLE_EQ(num("var result = ~0 >>> 28;"), 15);
}

} // namespace

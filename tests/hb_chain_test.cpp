//===- tests/hb_chain_test.cpp - chain decomposition invariants --------------===//
//
// The vector-clock index rests on a greedy chain decomposition of the HB
// DAG. These tests pin its structural invariants, which every
// copy-on-write sharing decision in HbGraph::buildClock relies on:
//
//  * the chains partition the operations (every op in exactly one chain),
//  * positions within each chain are dense and 1-based, so the tail's
//    position is the chain length,
//  * watermarks never decrease along a chain (each link happens-after its
//    predecessor link, so its clock dominates),
//  * the decomposition is a function of the DAG alone: an offline replay
//    of a recorded trace produces the same numChains() as the live run.
//
//===----------------------------------------------------------------------===//

#include "detect/TraceReplay.h"
#include "hb/HbGraph.h"
#include "support/Rng.h"
#include "webracer/Session.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace wr;

namespace {

Operation op(const char *Label) {
  Operation O;
  O.Kind = OperationKind::ExecuteScript;
  O.Label = Label;
  return O;
}

/// A web-shaped DAG: a dominant chain, forked handler chains that anchor
/// anywhere, and occasional fully concurrent ops.
void buildDag(HbGraph &G, size_t N, uint64_t Seed) {
  Rng R(Seed);
  OpId Tail = G.addOperation(op("root"));
  std::vector<OpId> All = {Tail};
  while (G.numOperations() < N) {
    double P = R.nextDouble();
    if (P < 0.55) {
      OpId Next = G.addOperation(op("chain"));
      G.addEdge(Tail, Next, HbRule::R1a_ParseOrder);
      Tail = Next;
      All.push_back(Next);
    } else if (P < 0.85) {
      OpId From = All[static_cast<size_t>(R.nextBelow(All.size()))];
      OpId Fork = G.addOperation(op("fork"));
      G.addEdge(From, Fork, HbRule::R8_TargetCreated);
      // Merge in a second random predecessor half the time.
      if (R.nextBool()) {
        OpId Other = All[static_cast<size_t>(R.nextBelow(All.size()))];
        if (Other < Fork)
          G.addEdge(Other, Fork, HbRule::R16_SetTimeout);
      }
      All.push_back(Fork);
    } else {
      All.push_back(G.addOperation(op("free")));
    }
  }
}

/// Per-chain op lists ordered by position, after validating that every op
/// sits in exactly one (chain, position) slot.
std::vector<std::vector<OpId>> chainsOf(const HbGraph &G) {
  // chainOf/chainPositionOf build the index lazily, so touch the last op
  // first.
  size_t N = G.numOperations();
  (void)G.chainOf(static_cast<OpId>(N));
  std::vector<std::vector<OpId>> Chains(G.numChains());
  std::map<std::pair<uint32_t, uint32_t>, OpId> Slots;
  for (OpId Op = 1; Op <= N; ++Op) {
    uint32_t Chain = G.chainOf(Op);
    uint32_t Pos = G.chainPositionOf(Op);
    EXPECT_LT(Chain, G.numChains()) << "op " << Op << " in unknown chain";
    EXPECT_GE(Pos, 1u) << "positions are 1-based";
    bool Fresh = Slots.emplace(std::make_pair(Chain, Pos), Op).second;
    EXPECT_TRUE(Fresh) << "ops " << Slots[{Chain, Pos}] << " and " << Op
                       << " share chain " << Chain << " position " << Pos;
    if (Chain < Chains.size()) {
      if (Chains[Chain].size() < Pos)
        Chains[Chain].resize(Pos, InvalidOpId);
      Chains[Chain][Pos - 1] = Op;
    }
  }
  return Chains;
}

TEST(HbChainTest, ChainsPartitionOperations) {
  HbGraph G;
  buildDag(G, 400, 11);
  auto Chains = chainsOf(G);
  size_t Total = 0;
  for (const auto &Chain : Chains)
    Total += Chain.size();
  // Exactly one slot per operation: a partition, no gaps, no overlaps.
  EXPECT_EQ(Total, G.numOperations());
}

TEST(HbChainTest, PositionsDenseAndTailIsLength) {
  HbGraph G;
  buildDag(G, 400, 23);
  for (const auto &Chain : chainsOf(G)) {
    ASSERT_FALSE(Chain.empty()) << "a chain with no operations exists";
    for (size_t I = 0; I < Chain.size(); ++I)
      EXPECT_NE(Chain[I], InvalidOpId)
          << "position " << I + 1 << " of a chain is unoccupied";
    // Dense 1-based positions make the tail's position the length.
    OpId TailOp = Chain.back();
    EXPECT_EQ(G.chainPositionOf(TailOp), Chain.size());
  }
}

TEST(HbChainTest, ChainLinksAreOrdered) {
  // Consecutive chain members must be HB-ordered (chains are paths in the
  // transitive closure, not arbitrary groupings).
  HbGraph G;
  buildDag(G, 300, 37);
  for (const auto &Chain : chainsOf(G))
    for (size_t I = 0; I + 1 < Chain.size(); ++I) {
      EXPECT_TRUE(G.reachesVectorClock(Chain[I], Chain[I + 1]));
      EXPECT_TRUE(G.reachesDfs(Chain[I], Chain[I + 1]));
    }
}

TEST(HbChainTest, WatermarksMonotoneAlongChains) {
  // Walking down a chain, every per-chain watermark is non-decreasing:
  // each link happens-after the previous one, so its clock dominates.
  HbGraph G;
  buildDag(G, 300, 41);
  auto Chains = chainsOf(G);
  uint32_t NumChains = static_cast<uint32_t>(G.numChains());
  for (const auto &Chain : Chains)
    for (size_t I = 0; I + 1 < Chain.size(); ++I)
      for (uint32_t C = 0; C < NumChains; ++C)
        EXPECT_GE(G.clockWatermark(Chain[I + 1], C),
                  G.clockWatermark(Chain[I], C))
            << "watermark of chain " << C << " drops between positions "
            << I + 1 << " and " << I + 2;
}

TEST(HbChainTest, OwnWatermarkIsOwnPosition) {
  HbGraph G;
  buildDag(G, 200, 53);
  for (OpId Op = 1; Op <= G.numOperations(); ++Op)
    EXPECT_EQ(G.clockWatermark(Op, G.chainOf(Op)), G.chainPositionOf(Op));
}

TEST(HbChainTest, NumChainsStableAcrossRecordReplay) {
  // Record the Fig. 1 session, round-trip the trace through the binary
  // format, replay offline: the reconstructed DAG must decompose into
  // exactly the same number of chains the live run reported.
  webracer::SessionOptions Opts;
  Opts.RecordTrace = true;
  webracer::Session S(Opts);
  S.network().addResource("index.html",
                          "<script>x = 1;</script>"
                          "<iframe src=\"a.html\"></iframe>"
                          "<iframe src=\"b.html\"></iframe>",
                          10);
  S.network().addResource("a.html", "<script>x = 2;</script>", 1000);
  S.network().addResource("b.html", "<script>alert(x);</script>", 2000);
  webracer::SessionResult Live = S.run("index.html");
  ASSERT_NE(S.trace(), nullptr);

  TraceLog Decoded;
  ASSERT_TRUE(TraceLog::deserialize(S.trace()->serialize(), Decoded));
  detect::ReplayResult Offline = detect::replayTrace(Decoded);

  EXPECT_GT(Live.Stats.VcChains, 0u);
  EXPECT_EQ(Offline.Stats.VcChains, Live.Stats.VcChains);
  EXPECT_EQ(Offline.Hb.numChains(), Live.Stats.VcChains);
  // And the chain assignment itself matches op for op, not just the count.
  const HbGraph &LiveHb = S.browser().hb();
  ASSERT_EQ(Offline.Hb.numOperations(), LiveHb.numOperations());
  for (OpId Op = 1; Op <= LiveHb.numOperations(); ++Op) {
    EXPECT_EQ(Offline.Hb.chainOf(Op), LiveHb.chainOf(Op));
    EXPECT_EQ(Offline.Hb.chainPositionOf(Op), LiveHb.chainPositionOf(Op));
  }
}

} // namespace

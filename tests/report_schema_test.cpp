//===- tests/report_schema_test.cpp - Report schema golden tests ------------===//
//
// Locks down the machine-readable report schema:
//
//  * The fig1-fig5 run reports, seeded, serialize byte-for-byte to the
//    checked-in golden file (regenerate with WR_UPDATE_GOLDEN=1 after a
//    deliberate schema change and review the diff).
//  * The corpus report is byte-identical at every --jobs count, and the
//    aggregate stats equal the merge of the per-site stats.
//
//===----------------------------------------------------------------------===//

#include "analysis/Scenarios.h"
#include "obs/Json.h"
#include "sites/CorpusReport.h"
#include "sites/CorpusRunner.h"
#include "webracer/RunReport.h"
#include "webracer/Session.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace wr;

namespace {

webracer::SessionResult runFigure(const analysis::PageSpec &Page,
                                  webracer::Session &S) {
  S.network().addResource(Page.EntryUrl, Page.Html, 10);
  for (const analysis::PageResource &R : Page.Resources)
    S.network().addResource(R.Url, R.Content, R.LatencyUs);
  return S.run(Page.EntryUrl);
}

/// One array document holding the five figure run reports (timing off, so
/// the bytes are a pure function of the page bytes and the seed).
std::string figureReportsDocument() {
  obs::Json All = obs::Json::array();
  for (const analysis::PageSpec &Page : analysis::figurePages()) {
    webracer::SessionOptions Opts;
    Opts.Browser.Seed = 7;
    webracer::Session S(Opts);
    webracer::SessionResult Result = runFigure(Page, S);
    All.push(webracer::buildRunReport(Page.Name, Result, S.browser().hb()));
  }
  return obs::writeJson(All);
}

TEST(ReportSchemaTest, FigureReportsMatchGoldenFile) {
  std::string Actual = figureReportsDocument();
  const char *Path = WR_GOLDEN_FILE;
  if (std::getenv("WR_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Actual;
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    GTEST_SKIP() << "golden file regenerated: " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing golden file " << Path
                  << "; run once with WR_UPDATE_GOLDEN=1 to create it";
  std::ostringstream Expected;
  Expected << In.rdbuf();
  EXPECT_EQ(Actual, Expected.str())
      << "report schema drifted; if intentional, bump ReportSchemaVersion "
         "and regenerate with WR_UPDATE_GOLDEN=1";
}

TEST(ReportSchemaTest, FigureReportsAreRunToRunDeterministic) {
  EXPECT_EQ(figureReportsDocument(), figureReportsDocument());
}

TEST(ReportSchemaTest, RunReportEnvelopeAndRacesLast) {
  analysis::PageSpec Fig1 = analysis::figurePages().front();
  webracer::SessionOptions Opts;
  Opts.Browser.Seed = 7;
  webracer::Session S(Opts);
  webracer::SessionResult Result = runFigure(Fig1, S);
  obs::Json Doc =
      webracer::buildRunReport(Fig1.Name, Result, S.browser().hb());
  ASSERT_TRUE(Doc.isObject());
  ASSERT_FALSE(Doc.members().empty());
  EXPECT_EQ(Doc.members().front().first, "schema");
  ASSERT_NE(Doc.find("schema"), nullptr);
  EXPECT_EQ(Doc.find("schema")->asInt(), 1);
  EXPECT_EQ(Doc.find("tool")->asString(), "webracer");
  EXPECT_EQ(Doc.find("kind")->asString(), "run");
  EXPECT_EQ(Doc.members().back().first, "races")
      << "races must stay the last key so text renderings end with them";
  ASSERT_NE(Doc.find("stats"), nullptr);
  EXPECT_NE(Doc.find("stats")->find("hb_edges_by_rule"), nullptr);
}

TEST(ReportSchemaTest, PerRuleEdgeCountsSumToEdgeTotal) {
  // The per-rule breakdown must account for every edge the graph holds
  // (the same per-rule figures the hb tests assert on the fig pages).
  for (const analysis::PageSpec &Page : analysis::figurePages()) {
    webracer::SessionOptions Opts;
    Opts.Browser.Seed = 7;
    webracer::Session S(Opts);
    webracer::SessionResult Result = runFigure(Page, S);
    uint64_t RuleSum = 0;
    for (const obs::NamedCount &R : Result.Stats.HbEdgesByRule)
      RuleSum += R.Count;
    EXPECT_EQ(RuleSum, Result.Stats.HbEdges) << Page.Name;
    EXPECT_EQ(Result.Stats.HbEdges, S.browser().hb().numEdges())
        << Page.Name;
  }
}

TEST(ReportSchemaTest, CorpusReportByteIdenticalAcrossJobCounts) {
  const uint64_t Seed = 99;
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  Corpus.resize(8);
  webracer::SessionOptions Opts;
  std::string Baseline;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    sites::CorpusStats Stats = sites::runCorpus(Corpus, Opts, Seed, Jobs);
    std::string Doc =
        obs::writeJson(sites::buildCorpusReport("corpus8", Stats));
    if (Jobs == 1)
      Baseline = Doc;
    else
      EXPECT_EQ(Doc, Baseline) << "report differs at jobs=" << Jobs;
  }
  EXPECT_FALSE(Baseline.empty());
}

TEST(ReportSchemaTest, AggregateEqualsSumOfPerSiteStats) {
  const uint64_t Seed = 99;
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  Corpus.resize(8);
  webracer::SessionOptions Opts;
  for (unsigned Jobs : {1u, 4u}) {
    sites::CorpusStats Stats = sites::runCorpus(Corpus, Opts, Seed, Jobs);
    obs::RunStats Manual;
    for (const sites::SiteRunStats &S : Stats.Sites)
      Manual.merge(S.Stats);
    // The deterministic serialization compares every field at once
    // (wall-clock time is excluded by construction).
    EXPECT_EQ(obs::writeJson(Stats.aggregate().toJson()),
              obs::writeJson(Manual.toJson()))
        << "aggregate != sum of sites at jobs=" << Jobs;
    EXPECT_GT(Manual.Operations, 0u);
    EXPECT_EQ(Manual.Raw, Stats.aggregate().Raw);
  }
}

} // namespace

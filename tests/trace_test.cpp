//===- tests/trace_test.cpp - trace record / serialize / replay tests ---------===//
//
// Pins the tentpole guarantees of the trace pipeline:
//
//  * the binary format round-trips losslessly (and re-serializes to the
//    exact same bytes),
//  * corrupt or truncated input is rejected cleanly,
//  * replaying a recorded trace through the detector and filters is
//    byte-identical to the online run that recorded it, and
//  * the thread-pool corpus driver produces the same results at any job
//    count.
//
//===----------------------------------------------------------------------===//

#include "detect/Report.h"
#include "detect/TraceReplay.h"
#include "instr/TraceLog.h"
#include "sites/CorpusRunner.h"
#include "webracer/Session.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::webracer;

namespace {

/// Runs a session with trace recording over the Fig. 1 page (one variable
/// race through racing iframes).
SessionOptions recordingOptions() {
  SessionOptions Opts;
  Opts.RecordTrace = true;
  return Opts;
}

void registerFig1(rt::NetworkSimulator &Net) {
  Net.addResource("index.html",
                  "<script>x = 1;</script>"
                  "<iframe src=\"a.html\"></iframe>"
                  "<iframe src=\"b.html\"></iframe>",
                  10);
  Net.addResource("a.html", "<script>x = 2;</script>", 1000);
  Net.addResource("b.html", "<script>alert(x);</script>", 2000);
}

void expectEventsEqual(const TraceEvent &A, const TraceEvent &B) {
  EXPECT_EQ(A.K, B.K);
  EXPECT_EQ(A.Op, B.Op);
  EXPECT_EQ(A.Op2, B.Op2);
  EXPECT_EQ(A.Rule, B.Rule);
  EXPECT_EQ(A.Crashed, B.Crashed);
  EXPECT_EQ(A.Meta.Kind, B.Meta.Kind);
  EXPECT_EQ(A.Meta.Label, B.Meta.Label);
  EXPECT_EQ(A.Mem.Kind, B.Mem.Kind);
  EXPECT_EQ(A.Mem.Origin, B.Mem.Origin);
  EXPECT_EQ(A.Mem.Op, B.Mem.Op);
  EXPECT_TRUE(A.Mem.Loc == B.Mem.Loc);
  EXPECT_EQ(A.Mem.Detail, B.Mem.Detail);
  EXPECT_EQ(A.Target, B.Target);
  EXPECT_EQ(A.TargetObject, B.TargetObject);
  EXPECT_EQ(A.EventType, B.EventType);
  EXPECT_EQ(A.DispatchIndex, B.DispatchIndex);
}

TEST(TraceSerdeTest, EmptyTraceRoundTrips) {
  TraceLog Log, Out;
  std::string Bytes = Log.serialize();
  EXPECT_TRUE(TraceLog::deserialize(Bytes, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(TraceSerdeTest, RealSessionRoundTripsLosslessly) {
  Session S(recordingOptions());
  registerFig1(S.network());
  S.run("index.html");
  ASSERT_NE(S.trace(), nullptr);
  const TraceLog &Log = *S.trace();
  ASSERT_GT(Log.size(), 20u);
  // The trace must exercise every event kind.
  EXPECT_GT(Log.count(TraceLog::EventKind::OpCreated), 0u);
  EXPECT_GT(Log.count(TraceLog::EventKind::OpBegin), 0u);
  EXPECT_GT(Log.count(TraceLog::EventKind::OpEnd), 0u);
  EXPECT_GT(Log.count(TraceLog::EventKind::HbEdge), 0u);
  EXPECT_GT(Log.count(TraceLog::EventKind::MemAccess), 0u);

  std::string Bytes = Log.serialize();
  TraceLog Out;
  std::string Error;
  ASSERT_TRUE(TraceLog::deserialize(Bytes, Out, &Error)) << Error;
  ASSERT_EQ(Out.size(), Log.size());
  for (size_t I = 0; I < Log.size(); ++I)
    expectEventsEqual(Log.events()[I], Out.events()[I]);
  // Re-serializing the decoded trace reproduces the exact bytes.
  EXPECT_EQ(Out.serialize(), Bytes);
  // And the human-readable rendering agrees too.
  EXPECT_EQ(Out.toString(), Log.toString());
}

TEST(TraceSerdeTest, DispatchEventsRoundTrip) {
  TraceLog Log;
  Log.onEventDispatch(7, 3, "click", 2, 11, 14);
  Log.onEventDispatch(InvalidNodeId, 9, "readystatechange", -1, 15, 15);
  TraceLog Out;
  ASSERT_TRUE(TraceLog::deserialize(Log.serialize(), Out));
  ASSERT_EQ(Out.size(), 2u);
  expectEventsEqual(Log.events()[0], Out.events()[0]);
  expectEventsEqual(Log.events()[1], Out.events()[1]);
}

TEST(TraceSerdeTest, RejectsBadMagic) {
  TraceLog Log, Out;
  Log.onOperationBegin(1);
  std::string Bytes = Log.serialize();
  Bytes[0] = 'X';
  std::string Error;
  EXPECT_FALSE(TraceLog::deserialize(Bytes, Out, &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_TRUE(Out.empty());
}

TEST(TraceSerdeTest, RejectsTruncationAtEveryPrefix) {
  Session S(recordingOptions());
  registerFig1(S.network());
  S.run("index.html");
  std::string Bytes = S.trace()->serialize();
  // Any strict prefix must fail cleanly (never crash, never succeed),
  // and must leave the output cleared.
  for (size_t Len = 0; Len < Bytes.size(); Len += 7) {
    TraceLog Out;
    Out.onOperationBegin(99); // Pre-populate to observe clearing.
    EXPECT_FALSE(TraceLog::deserialize(Bytes.substr(0, Len), Out));
    EXPECT_TRUE(Out.empty());
  }
}

TEST(TraceSerdeTest, RejectsTrailingGarbage) {
  TraceLog Log, Out;
  Log.onOperationBegin(1);
  std::string Bytes = Log.serialize() + "extra";
  EXPECT_FALSE(TraceLog::deserialize(Bytes, Out));
}

TEST(TraceSerdeTest, RejectsOutOfRangeEnums) {
  TraceLog Log, Out;
  Log.onHbEdge(1, 2, HbRule::RProgram);
  std::string Bytes = Log.serialize();
  // The last payload byte is the HbRule; force it out of range.
  Bytes[Bytes.size() - 1] = '\xee';
  std::string Error;
  EXPECT_FALSE(TraceLog::deserialize(Bytes, Out, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(TraceSerdeTest, RejectsCorruptLocationTable) {
  TraceLog Log;
  Access A;
  A.Kind = AccessKind::Write;
  A.Op = 1;
  A.Loc = Log.interner().intern(JSVarLoc{0, "x"});
  Log.onMemoryAccess(A);
  A.Loc = Log.interner().intern(JSVarLoc{0, "y"});
  Log.onMemoryAccess(A);
  std::string Bytes = Log.serialize();
  ASSERT_EQ(Bytes.compare(0, 4, "WRT2"), 0);

  // Make the second table entry a byte-duplicate of the first: the
  // decoder must refuse a table whose entries do not intern to their own
  // index.
  size_t YPos = Bytes.find('y');
  ASSERT_NE(YPos, std::string::npos);
  std::string Dup = Bytes;
  Dup[YPos] = 'x';
  TraceLog Out;
  Out.onOperationBegin(99);
  std::string Error;
  EXPECT_FALSE(TraceLog::deserialize(Dup, Out, &Error));
  EXPECT_NE(Error.find("duplicate location"), std::string::npos) << Error;
  EXPECT_TRUE(Out.empty());

  // Shrink the declared entry count: the table and event stream shear
  // against each other and decoding must fail, not misattribute bytes.
  std::string Short = Bytes;
  ASSERT_EQ(Short[4], 2); // Varint location count.
  Short[4] = 1;
  EXPECT_FALSE(TraceLog::deserialize(Short, Out, &Error));
  EXPECT_TRUE(Out.empty());
}

TEST(TraceSerdeTest, LegacyWrt1RoundTripsWithIdenticalIds) {
  Session S(recordingOptions());
  registerFig1(S.network());
  S.run("index.html");
  const TraceLog &Log = *S.trace();
  std::string Legacy = Log.serializeLegacyWrt1();
  ASSERT_EQ(Legacy.compare(0, 4, "WRT1"), 0);

  TraceLog Out;
  std::string Error;
  ASSERT_TRUE(TraceLog::deserialize(Legacy, Out, &Error)) << Error;
  ASSERT_EQ(Out.size(), Log.size());
  // WRT1 carries no ids: re-interning its inline locations in stream
  // order (first-touch order) must reproduce the online ids exactly,
  // which expectEventsEqual checks through Mem.Loc.
  for (size_t I = 0; I < Log.size(); ++I)
    expectEventsEqual(Log.events()[I], Out.events()[I]);
  EXPECT_EQ(Out.interner().size(), Log.interner().size());
  // And re-encoding in the current format reproduces the WRT2 bytes.
  EXPECT_EQ(Out.serialize(), Log.serialize());
}

TEST(TraceReplayTest, LegacyWrt1ReplayMatchesOnlineRun) {
  Session S(recordingOptions());
  registerFig1(S.network());
  SessionResult Online = S.run("index.html");
  TraceLog Decoded;
  ASSERT_TRUE(
      TraceLog::deserialize(S.trace()->serializeLegacyWrt1(), Decoded));
  detect::ReplayResult Offline = detect::replayTrace(Decoded);
  EXPECT_EQ(detect::describeRaces(Offline.RawRaces, Offline.Hb),
            detect::describeRaces(Online.RawRaces, S.browser().hb()));
  EXPECT_EQ(detect::describeRaces(Offline.FilteredRaces, Offline.Hb),
            detect::describeRaces(Online.FilteredRaces, S.browser().hb()));
  EXPECT_EQ(Offline.Stats.ChcQueries, Online.Stats.ChcQueries);
  EXPECT_EQ(Offline.Stats.EpochHits, Online.Stats.EpochHits);
  EXPECT_EQ(Offline.Stats.InternedLocations,
            Online.Stats.InternedLocations);
}

TEST(TraceReplayTest, GraphReconstructionMatchesOnline) {
  Session S(recordingOptions());
  registerFig1(S.network());
  S.run("index.html");
  HbGraph Hb = detect::buildHbGraphFromTrace(*S.trace());
  EXPECT_EQ(Hb.numOperations(), S.browser().hb().numOperations());
  EXPECT_EQ(Hb.numEdges(), S.browser().hb().numEdges());
  // Reachability agrees pairwise with the online graph.
  size_t N = Hb.numOperations();
  for (OpId A = 1; A <= N; ++A)
    for (OpId B = 1; B <= N; ++B)
      EXPECT_EQ(Hb.happensBefore(A, B),
                S.browser().hb().happensBefore(A, B))
          << A << " -> " << B;
  // Operation metadata survives.
  for (OpId A = 1; A <= N; ++A) {
    EXPECT_EQ(Hb.operation(A).Kind, S.browser().hb().operation(A).Kind);
    EXPECT_EQ(Hb.operation(A).Label, S.browser().hb().operation(A).Label);
  }
}

TEST(TraceReplayTest, ReplayIsByteIdenticalToOnlineRun) {
  Session S(recordingOptions());
  registerFig1(S.network());
  SessionResult Online = S.run("index.html");

  detect::ReplayResult Offline = detect::replayTrace(*S.trace());
  EXPECT_EQ(Offline.Stats.Operations, Online.Stats.Operations);
  EXPECT_EQ(Offline.Stats.HbEdges, Online.Stats.HbEdges);
  EXPECT_EQ(Offline.Stats.ChcQueries, Online.Stats.ChcQueries);
  EXPECT_EQ(Offline.Stats.Crashes, Online.Crashes.size());
  EXPECT_EQ(Offline.Stats.AccessesSeen, Online.Stats.AccessesSeen);
  EXPECT_EQ(Offline.Stats.TrackedLocations, Online.Stats.TrackedLocations);
  EXPECT_EQ(Offline.Stats.InternedLocations,
            Online.Stats.InternedLocations);
  EXPECT_EQ(Offline.Stats.InternHits, Online.Stats.InternHits);
  EXPECT_EQ(Offline.Stats.EpochHits, Online.Stats.EpochHits);

  // The reports - raw and filtered - must be byte-identical.
  EXPECT_EQ(detect::describeRaces(Offline.RawRaces, Offline.Hb),
            detect::describeRaces(Online.RawRaces, S.browser().hb()));
  EXPECT_EQ(detect::describeRaces(Offline.FilteredRaces, Offline.Hb),
            detect::describeRaces(Online.FilteredRaces, S.browser().hb()));
  EXPECT_EQ(detect::summaryLine(Offline.RawRaces),
            detect::summaryLine(Online.RawRaces));
}

TEST(TraceReplayTest, ReplaySurvivesSerializationRoundTrip) {
  Session S(recordingOptions());
  registerFig1(S.network());
  SessionResult Online = S.run("index.html");
  TraceLog Decoded;
  ASSERT_TRUE(TraceLog::deserialize(S.trace()->serialize(), Decoded));
  detect::ReplayResult Offline = detect::replayTrace(Decoded);
  EXPECT_EQ(detect::describeRaces(Offline.RawRaces, Offline.Hb),
            detect::describeRaces(Online.RawRaces, S.browser().hb()));
  EXPECT_EQ(detect::describeRaces(Offline.FilteredRaces, Offline.Hb),
            detect::describeRaces(Online.FilteredRaces, S.browser().hb()));
}

TEST(TraceReplayTest, DfsReplayFindsSameRaces) {
  Session S(recordingOptions());
  registerFig1(S.network());
  SessionResult Online = S.run("index.html");
  detect::ReplayOptions Opts;
  Opts.Detector.Engine = EngineKind::HbDfs;
  detect::ReplayResult Offline = detect::replayTrace(*S.trace(), Opts);
  EXPECT_EQ(detect::describeRaces(Offline.RawRaces, Offline.Hb),
            detect::describeRaces(Online.RawRaces, S.browser().hb()));
}

TEST(TraceReplayTest, DispatchCountsMatchBrowser) {
  SessionOptions Opts = recordingOptions();
  Session S(Opts);
  S.network().addResource(
      "index.html",
      "<div id=\"a\" onclick=\"window.n = (window.n || 0) + 1;\"></div>",
      10);
  S.run("index.html");
  Element *A = S.browser().mainWindow()->document().getElementById("a");
  detect::DispatchCountFn Live = S.dispatchCounts();
  detect::DispatchCountFn FromTrace =
      detect::dispatchCountsFromTrace(*S.trace());
  EventHandlerLoc Clicked{A->id(), 0, "click", 0};
  EXPECT_EQ(FromTrace(Clicked), Live(Clicked));
  EXPECT_GT(FromTrace(Clicked), 0);
  EventHandlerLoc Never{A->id(), 0, "dblclick", 0};
  EXPECT_EQ(FromTrace(Never), 0);
}

TEST(ParallelCorpusTest, JobCountsProduceIdenticalResults) {
  const uint64_t Seed = 77;
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  Corpus.resize(6); // Keep the test fast.
  webracer::SessionOptions Base;
  sites::CorpusStats Serial = sites::runCorpus(Corpus, Base, Seed, 1);
  sites::CorpusStats Pooled = sites::runCorpus(Corpus, Base, Seed, 4);
  ASSERT_EQ(Serial.Sites.size(), Pooled.Sites.size());
  for (size_t I = 0; I < Serial.Sites.size(); ++I) {
    const sites::SiteRunStats &A = Serial.Sites[I];
    const sites::SiteRunStats &B = Pooled.Sites[I];
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.Stats.Operations, B.Stats.Operations);
    EXPECT_EQ(A.Stats.HbEdges, B.Stats.HbEdges);
    EXPECT_EQ(A.Raw.total(), B.Raw.total());
    EXPECT_EQ(A.Raw.Variable, B.Raw.Variable);
    EXPECT_EQ(A.Raw.Html, B.Raw.Html);
    EXPECT_EQ(A.Raw.Function, B.Raw.Function);
    EXPECT_EQ(A.Raw.EventDispatch, B.Raw.EventDispatch);
    EXPECT_EQ(A.Filtered.total(), B.Filtered.total());
  }
}

TEST(ParallelCorpusTest, JobsZeroMeansAllCores) {
  const uint64_t Seed = 77;
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  Corpus.resize(3);
  webracer::SessionOptions Base;
  sites::CorpusStats Serial = sites::runCorpus(Corpus, Base, Seed, 1);
  sites::CorpusStats Auto = sites::runCorpus(Corpus, Base, Seed, 0);
  ASSERT_EQ(Serial.Sites.size(), Auto.Sites.size());
  for (size_t I = 0; I < Serial.Sites.size(); ++I)
    EXPECT_EQ(Serial.Sites[I].Raw.total(), Auto.Sites[I].Raw.total());
}

} // namespace

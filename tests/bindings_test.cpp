//===- tests/bindings_test.cpp - DOM/BOM host binding tests --------------------===//
//
// Exercises the JS-visible browser surface: element properties,
// attributes, DOM mutation from scripts, style objects, collections,
// window/document relations, XHR, and the Image preload idiom.
//
//===----------------------------------------------------------------------===//

#include "runtime/Browser.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::rt;

namespace {

class BindingsTest : public ::testing::Test {
protected:
  BindingsTest() : B(BrowserOptions()) {}

  void load(const std::string &Html,
            std::vector<std::pair<std::string, std::string>> Resources =
                {}) {
    B.network().addResource("index.html", Html, 10);
    for (auto &[Url, Body] : Resources)
      B.network().addResource(Url, Body, 500);
    B.loadPage("index.html");
    B.runToQuiescence();
  }

  std::string global(const std::string &Name) {
    js::Value *V = B.interp().globalEnv()->findOwn(Name);
    return V ? js::toDisplayString(*V) : "<undeclared>";
  }

  Browser B;
};

TEST_F(BindingsTest, ElementIdentityProperties) {
  load("<div id=\"d\" class=\"big red\" title=\"tip\"></div>"
       "<script>"
       "var e = document.getElementById('d');"
       "var r = e.id + '/' + e.tagName + '/' + e.className + '/' +"
       "  e.title;"
       "</script>");
  EXPECT_EQ(global("r"), "d/DIV/big red/tip");
}

TEST_F(BindingsTest, GetSetRemoveAttribute) {
  load("<div id=\"d\" data-x=\"1\"></div>"
       "<script>"
       "var e = document.getElementById('d');"
       "var before = e.getAttribute('data-x');"
       "e.setAttribute('data-x', '2');"
       "var after = e.getAttribute('data-x');"
       "e.removeAttribute('data-x');"
       "var gone = e.getAttribute('data-x') === null;"
       "var missing = e.getAttribute('nope') === null;"
       "</script>");
  EXPECT_EQ(global("before"), "1");
  EXPECT_EQ(global("after"), "2");
  EXPECT_EQ(global("gone"), "true");
  EXPECT_EQ(global("missing"), "true");
}

TEST_F(BindingsTest, ParentAndChildren) {
  load("<div id=\"p\"><em id=\"c1\"></em><em id=\"c2\"></em></div>"
       "<script>"
       "var p = document.getElementById('p');"
       "var sameParent = document.getElementById('c1').parentNode === p;"
       "var kids = p.childNodes.length;"
       "var first = p.firstChild.id;"
       "var last = p.lastChild.id;"
       "</script>");
  EXPECT_EQ(global("sameParent"), "true");
  EXPECT_EQ(global("kids"), "2");
  EXPECT_EQ(global("first"), "c1");
  EXPECT_EQ(global("last"), "c2");
}

TEST_F(BindingsTest, CreateAppendRemove) {
  load("<script>"
       "var d = document.createElement('section');"
       "d.id = 'fresh';"
       "var detached = document.getElementById('fresh') === null;"
       "document.body.appendChild(d);"
       "var attached = document.getElementById('fresh') !== null;"
       "document.body.removeChild(d);"
       "var removed = document.getElementById('fresh') === null;"
       "</script>");
  EXPECT_EQ(global("detached"), "true");
  EXPECT_EQ(global("attached"), "true");
  EXPECT_EQ(global("removed"), "true");
}

TEST_F(BindingsTest, InsertBeforePositionsChild) {
  load("<div id=\"p\"><em id=\"b\"></em></div>"
       "<script>"
       "var p = document.getElementById('p');"
       "var a = document.createElement('em');"
       "a.id = 'a';"
       "p.insertBefore(a, document.getElementById('b'));"
       "var order = p.firstChild.id + p.lastChild.id;"
       "</script>");
  EXPECT_EQ(global("order"), "ab");
}

TEST_F(BindingsTest, AppendChildErrors) {
  load("<script>"
       "var caught = '';"
       "try { document.body.appendChild(null); }"
       "catch (e) { caught = e.name; }"
       "var cycle = '';"
       "var d = document.createElement('div');"
       "document.body.appendChild(d);"
       "try { d.appendChild(document.body); }"
       "catch (e) { cycle = e.name; }"
       "</script>");
  EXPECT_EQ(global("caught"), "TypeError");
  EXPECT_EQ(global("cycle"), "HierarchyRequestError");
}

TEST_F(BindingsTest, Collections) {
  load("<img src=\"a.png\" /><img src=\"b.png\" />"
       "<form></form>"
       "<a href=\"x\">l</a>"
       "<script>"
       "var counts = document.images.length + '/' +"
       "  document.forms.length + '/' + document.links.length + '/' +"
       "  document.scripts.length;"
       "</script>",
      {{"a.png", "P"}, {"b.png", "P"}});
  EXPECT_EQ(global("counts"), "2/1/1/1");
}

TEST_F(BindingsTest, GetElementsByTagAndName) {
  load("<p></p><p></p>"
       "<input name=\"q\" /><input name=\"q\" />"
       "<div id=\"scope\"><p></p></div>"
       "<script>"
       "var tags = document.getElementsByTagName('p').length;"
       "var named = document.getElementsByName('q').length;"
       "var scoped = document.getElementById('scope')"
       "  .getElementsByTagName('p').length;"
       "</script>");
  EXPECT_EQ(global("tags"), "3");
  EXPECT_EQ(global("named"), "2");
  EXPECT_EQ(global("scoped"), "1");
}

TEST_F(BindingsTest, DocumentRelations) {
  load("<script>"
       "var r = (document.body.parentNode === document.documentElement)"
       "  + '/' + (window.document === document)"
       "  + '/' + (window === window.self)"
       "  + '/' + document.readyState;"
       "</script>");
  EXPECT_EQ(global("r"), "true/true/true/loading");
}

TEST_F(BindingsTest, ReadyStateProgression) {
  load("<script>"
       "var states = [document.readyState];"
       "document.addEventListener('DOMContentLoaded', function() {"
       "  states.push(document.readyState); });"
       "window.addEventListener('load', function() {"
       "  states.push(document.readyState); });"
       "</script>");
  EXPECT_EQ(global("states"), "loading,interactive,complete");
}

TEST_F(BindingsTest, StyleObjectIsCachedPerElement) {
  load("<div id=\"d\" style=\"color: blue\"></div>"
       "<script>"
       "var e = document.getElementById('d');"
       "var same = e.style === e.style;"
       "e.style.color = 'green';"
       "var color = e.style.color;"
       "</script>");
  EXPECT_EQ(global("same"), "true");
  EXPECT_EQ(global("color"), "green");
}

TEST_F(BindingsTest, InnerHtmlRoundTrip) {
  load("<div id=\"host\"></div>"
       "<script>"
       "var h = document.getElementById('host');"
       "h.innerHTML = '<span id=\"kid\">text</span>';"
       "var html = h.innerHTML;"
       "h.innerHTML = '';"
       "var cleared = document.getElementById('kid') === null;"
       "</script>");
  EXPECT_EQ(global("html"), "<span id=\"kid\">text</span>");
  EXPECT_EQ(global("cleared"), "true");
}

TEST_F(BindingsTest, FormValueAndChecked) {
  load("<input id=\"t\" type=\"text\" value=\"init\" />"
       "<input id=\"c\" type=\"checkbox\" />"
       "<script>"
       "var t = document.getElementById('t');"
       "var v0 = t.value;"
       "t.value = 'changed';"
       "var v1 = t.value;"
       "var c = document.getElementById('c');"
       "var c0 = c.checked;"
       "c.checked = true;"
       "var c1 = c.checked;"
       "</script>");
  EXPECT_EQ(global("v0"), "init");
  EXPECT_EQ(global("v1"), "changed");
  EXPECT_EQ(global("c0"), "false");
  EXPECT_EQ(global("c1"), "true");
}

TEST_F(BindingsTest, ExpandoProperties) {
  load("<div id=\"d\"></div>"
       "<script>"
       "var e = document.getElementById('d');"
       "e.customData = {count: 3};"
       "var back = document.getElementById('d').customData.count;"
       "</script>");
  EXPECT_EQ(global("back"), "3");
}

TEST_F(BindingsTest, ImagePreloadIdiom) {
  load("<script>"
       "var img = new Image();"
       "img.onload = function() { window.preloaded = true; };"
       "img.src = 'big.png';"
       "</script>",
      {{"big.png", "PNG"}});
  js::Value *V =
      B.mainWindow()->windowObject()->findOwnProperty("preloaded");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
}

TEST_F(BindingsTest, ImageErrorEvent) {
  load("<script>"
       "var img = new Image();"
       "img.onerror = function() { window.failed = true; };"
       "img.src = 'missing.png';"
       "</script>");
  js::Value *V =
      B.mainWindow()->windowObject()->findOwnProperty("failed");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
}

TEST_F(BindingsTest, XhrStates) {
  load("<script>"
       "var xhr = new XMLHttpRequest();"
       "var s0 = xhr.readyState;"
       "xhr.open('GET', 'd.txt');"
       "var s1 = xhr.readyState;"
       "xhr.onreadystatechange = function() {"
       "  window.finalState = xhr.readyState;"
       "  window.status = xhr.status;"
       "  window.body = xhr.responseText;"
       "};"
       "xhr.send();"
       "</script>",
      {{"d.txt", "hello"}});
  EXPECT_EQ(global("s0"), "0");
  EXPECT_EQ(global("s1"), "1");
  js::Object *W = B.mainWindow()->windowObject();
  EXPECT_DOUBLE_EQ(W->findOwnProperty("finalState")->asNumber(), 4);
  EXPECT_DOUBLE_EQ(W->findOwnProperty("status")->asNumber(), 200);
  EXPECT_EQ(W->findOwnProperty("body")->asString(), "hello");
}

TEST_F(BindingsTest, XhrMissingResource404) {
  load("<script>"
       "var xhr = new XMLHttpRequest();"
       "xhr.open('GET', 'gone.txt');"
       "xhr.onreadystatechange = function() {"
       "  window.code = xhr.status; };"
       "xhr.send();"
       "</script>");
  js::Object *W = B.mainWindow()->windowObject();
  EXPECT_DOUBLE_EQ(W->findOwnProperty("code")->asNumber(), 404);
}

TEST_F(BindingsTest, RemoveEventListener) {
  load("<div id=\"d\"></div>"
       "<script>"
       "var n = 0;"
       "function onHover() { n++; }"
       "var d = document.getElementById('d');"
       "d.addEventListener('mouseover', onHover);"
       "</script>");
  Element *E = B.mainWindow()->document().getElementById("d");
  B.userEvent(E, "mouseover");
  B.runToQuiescence();
  EXPECT_EQ(global("n"), "1");
  // Remove and re-dispatch.
  B.network().addResource("x.js", "", 10);
  Browser &Ref = B;
  (void)Ref;
  // Run removal through script.
  js::Value *Fn = B.interp().globalEnv()->findOwn("onHover");
  ASSERT_NE(Fn, nullptr);
  B.removeListener(TargetKey{E->id(), 0}, "mouseover", *Fn);
  B.userEvent(E, "mouseover");
  B.runToQuiescence();
  EXPECT_EQ(global("n"), "1");
}

TEST_F(BindingsTest, OnPropertyReadBack) {
  load("<div id=\"d\"></div>"
       "<script>"
       "var d = document.getElementById('d');"
       "var empty = d.onclick == null;"
       "d.onclick = function() { return 1; };"
       "var isFn = typeof d.onclick == 'function';"
       "</script>");
  EXPECT_EQ(global("empty"), "true");
  EXPECT_EQ(global("isFn"), "true");
}

TEST_F(BindingsTest, FramesAndParentWindow) {
  B.network().addResource("index.html",
                          "<iframe id=\"f\" src=\"n.html\"></iframe>"
                          "<script>window.mainMark = 'main';</script>",
                          10);
  B.network().addResource(
      "n.html",
      "<script>window.sawParent = window.parent === window.top;</script>",
      200);
  B.loadPage("index.html");
  B.runToQuiescence();
  // Nested script ran; frames share the JS global scope.
  ASSERT_EQ(B.windows().size(), 2u);
  EXPECT_NE(
      B.mainWindow()->windowObject()->findOwnProperty("mainMark"),
      nullptr);
}

TEST_F(BindingsTest, ConsoleAndConfirm) {
  load("<script>"
       "console.log('a', 1, true);"
       "console.warn('w');"
       "var ok = confirm('sure?');"
       "</script>");
  ASSERT_EQ(B.consoleLog().size(), 2u);
  EXPECT_EQ(B.consoleLog()[0], "a 1 true");
  EXPECT_EQ(global("ok"), "true");
}

} // namespace

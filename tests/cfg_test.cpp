//===- tests/cfg_test.cpp - MiniJS CFG lowering unit tests --------------------===//
//
// Exercises the control-flow lowering (analysis/Cfg.h) two ways:
// hand-written programs check the structural shape of each construct
// (branch/merge edges, loop back edges, short-circuit decomposition,
// switch dispatch), and a property-style pass runs the full invariant
// suite over every script of the first corpus sites plus a grab bag of
// tricky bodies.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "js/AstVisitor.h"
#include "js/Parser.h"
#include "sites/Corpus.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace wr;
using namespace wr::analysis;

namespace {

js::ParseResult parseJs(const std::string &Src) {
  js::ParseResult R = js::Parser::parseProgram(Src);
  EXPECT_TRUE(R.ok()) << "parse failed: " << Src;
  return R;
}

/// Collects every statement of one body, NOT descending into nested
/// function literals (they get their own Cfg).
class StmtCollector : public js::ConstAstVisitor {
public:
  std::vector<const js::Stmt *> Stmts;

protected:
  bool beforeStmt(const js::Stmt &S) override {
    Stmts.push_back(&S);
    return true;
  }
  bool enterFunction(const js::FunctionLiteral &Fn) override {
    (void)Fn;
    return false;
  }
};

/// The full invariant suite from the Cfg.h file comment, applied to one
/// lowered program.
void checkInvariants(const js::Program &P, const Cfg &G,
                     const std::string &Label) {
  SCOPED_TRACE(Label);
  ASSERT_GE(G.Blocks.size(), 2u);
  EXPECT_EQ(G.entry().Id, Cfg::EntryId);
  EXPECT_EQ(G.exit().Id, Cfg::ExitId);
  // The exit block terminates the graph.
  EXPECT_TRUE(G.exit().Succs.empty());

  // Every statement of the body maps to exactly one valid block, and
  // every anchored statement appears in that block's statement list or
  // is a control statement whose condition starts there.
  StmtCollector C;
  C.walk(P);
  for (const js::Stmt *S : C.Stmts) {
    auto It = G.BlockOf.find(S);
    ASSERT_NE(It, G.BlockOf.end())
        << "statement not lowered: " << js::astKindName(S->kind());
    EXPECT_LT(It->second, G.Blocks.size());
  }
  // ... and BlockOf holds nothing outside the body (same count; the map
  // keys are unique by construction).
  EXPECT_EQ(G.BlockOf.size(), C.Stmts.size());

  std::set<std::pair<uint32_t, uint32_t>> Edges;
  for (const CfgBlock &B : G.Blocks) {
    // Edge targets are valid and mirrored in the predecessor lists.
    for (const CfgEdge &E : B.Succs) {
      ASSERT_LT(E.To, G.Blocks.size());
      const std::vector<uint32_t> &Preds = G.Blocks[E.To].Preds;
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), B.Id), Preds.end())
          << "edge b" << B.Id << " -> b" << E.To << " missing from preds";
      Edges.insert({B.Id, E.To});
    }
    // Conditional edges come in (true, false) pairs sharing one atomic
    // condition; the condition is never a Logical (short-circuit
    // operators decompose into chained blocks).
    std::map<const js::Expr *, std::pair<int, int>> Polarity;
    for (const CfgEdge &E : B.Succs) {
      if (!E.Cond)
        continue;
      EXPECT_FALSE(js::isa<js::Logical>(E.Cond))
          << "short-circuit condition leaked onto an edge";
      if (E.WhenTrue)
        ++Polarity[E.Cond].first;
      else
        ++Polarity[E.Cond].second;
    }
    for (const auto &[Cond, Counts] : Polarity) {
      (void)Cond;
      EXPECT_EQ(Counts.first, 1);
      EXPECT_EQ(Counts.second, 1);
    }
  }

  // Back edges are real edges.
  for (const auto &[From, To] : G.BackEdges)
    EXPECT_TRUE(Edges.count({From, To}))
        << "phantom back edge b" << From << " -> b" << To;

  // Reverse postorder covers only reachable blocks, each once, with the
  // entry first.
  std::vector<uint32_t> Rpo = G.rpo();
  ASSERT_FALSE(Rpo.empty());
  EXPECT_EQ(Rpo.front(), Cfg::EntryId);
  std::set<uint32_t> Seen(Rpo.begin(), Rpo.end());
  EXPECT_EQ(Seen.size(), Rpo.size());
}

/// Parses, lowers, and invariant-checks in one go.
Cfg lowerChecked(const js::Program &P, const std::string &Label) {
  Cfg G = Cfg::lower(P);
  checkInvariants(P, G, Label);
  return G;
}

size_t conditionalEdgeCount(const Cfg &G) {
  size_t N = 0;
  for (const CfgBlock &B : G.Blocks)
    for (const CfgEdge &E : B.Succs)
      if (E.Cond)
        ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Hand-written structural cases
//===----------------------------------------------------------------------===//

TEST(CfgTest, StraightLineSharesOneBlock) {
  js::ParseResult R = parseJs("a = 1; b = 2; c = a + b;");
  Cfg G = lowerChecked(*R.Ast, "straight-line");
  // All three statements anchor in the same block; no branches anywhere.
  std::set<uint32_t> Anchors;
  for (const auto &[S, B] : G.BlockOf) {
    (void)S;
    Anchors.insert(B);
  }
  EXPECT_EQ(Anchors.size(), 1u);
  EXPECT_EQ(conditionalEdgeCount(G), 0u);
  EXPECT_TRUE(G.BackEdges.empty());
}

TEST(CfgTest, IfElseBranchesAndMerges) {
  js::ParseResult R =
      parseJs("if (c) { x = 1; } else { y = 2; } z = 3;");
  Cfg G = lowerChecked(*R.Ast, "if-else");
  const js::Stmt *IfStmt = R.Ast->Body[0].get();
  const js::Stmt *MergeStmt = R.Ast->Body[1].get();
  uint32_t CondBlock = G.BlockOf.at(IfStmt);
  // The anchor block branches on exactly one (true, false) pair.
  ASSERT_EQ(G.Blocks[CondBlock].Succs.size(), 2u);
  EXPECT_EQ(conditionalEdgeCount(G), 2u);
  EXPECT_NE(G.Blocks[CondBlock].Succs[0].To,
            G.Blocks[CondBlock].Succs[1].To);
  // Both arms merge into the block of the statement after the if.
  uint32_t MergeBlock = G.BlockOf.at(MergeStmt);
  EXPECT_GE(G.Blocks[MergeBlock].Preds.size(), 2u);
  EXPECT_TRUE(G.BackEdges.empty());
}

TEST(CfgTest, IfWithoutElseStillPairsEdges) {
  js::ParseResult R = parseJs("if (c) { x = 1; } z = 3;");
  Cfg G = lowerChecked(*R.Ast, "if-no-else");
  EXPECT_EQ(conditionalEdgeCount(G), 2u);
  uint32_t MergeBlock = G.BlockOf.at(R.Ast->Body[1].get());
  // Reached both from the then-arm and from the false edge directly.
  EXPECT_GE(G.Blocks[MergeBlock].Preds.size(), 2u);
}

TEST(CfgTest, WhileLoopHasOneBackEdgeToHeader) {
  js::ParseResult R =
      parseJs("while (going) { x = x + 1; } done = 1;");
  Cfg G = lowerChecked(*R.Ast, "while");
  const js::Stmt *Loop = R.Ast->Body[0].get();
  uint32_t Header = G.BlockOf.at(Loop);
  ASSERT_EQ(G.BackEdges.size(), 1u);
  EXPECT_EQ(G.BackEdges[0].second, Header);
  // The header carries the (true, false) exit/entry pair.
  EXPECT_EQ(G.Blocks[Header].Succs.size(), 2u);
}

TEST(CfgTest, DoWhileRunsBodyBeforeCondition) {
  js::ParseResult R = parseJs("do { x = x + 1; } while (going);");
  Cfg G = lowerChecked(*R.Ast, "do-while");
  const js::Stmt *Loop = R.Ast->Body[0].get();
  ASSERT_EQ(G.BackEdges.size(), 1u);
  // The back edge returns to the body block, where the do..while
  // anchors (the body runs first).
  EXPECT_EQ(G.BackEdges[0].second, G.BlockOf.at(Loop));
  EXPECT_EQ(conditionalEdgeCount(G), 2u);
}

TEST(CfgTest, ForLoopBackEdgeAndStepTerminator) {
  js::ParseResult R =
      parseJs("for (i = 0; i < 3; i = i + 1) { x = i; } done = 1;");
  Cfg G = lowerChecked(*R.Ast, "for");
  ASSERT_EQ(G.BackEdges.size(), 1u);
  const js::Stmt *Loop = R.Ast->Body[0].get();
  uint32_t Header = G.BlockOf.at(Loop);
  EXPECT_EQ(G.BackEdges[0].second, Header);
  // Some block carries the step expression as its terminator (the
  // latch), so its writes stay attributable.
  bool FoundLatchTerm = false;
  for (const CfgBlock &B : G.Blocks)
    if (B.Id != Header && B.Term && js::isa<js::Assign>(B.Term))
      FoundLatchTerm = true;
  EXPECT_TRUE(FoundLatchTerm);
}

TEST(CfgTest, NestedLoopsHaveTwoBackEdges) {
  js::ParseResult R = parseJs(
      "while (a) { while (b) { x = 1; } y = 2; } z = 3;");
  Cfg G = lowerChecked(*R.Ast, "nested-loops");
  EXPECT_EQ(G.BackEdges.size(), 2u);
}

TEST(CfgTest, BreakLeavesLoopContinueReturnsToHeader) {
  js::ParseResult R = parseJs(
      "while (a) { if (b) { break; } if (c) { continue; } x = 1; }"
      "done = 1;");
  Cfg G = lowerChecked(*R.Ast, "break-continue");
  const js::Stmt *Loop = R.Ast->Body[0].get();
  uint32_t Header = G.BlockOf.at(Loop);
  uint32_t After = G.BlockOf.at(R.Ast->Body[1].get());
  // continue adds a second edge back to the header alongside the latch.
  size_t ToHeader = 0, ToAfter = 0;
  for (const CfgBlock &B : G.Blocks)
    for (const CfgEdge &E : B.Succs) {
      if (E.To == Header)
        ++ToHeader;
      if (E.To == After)
        ++ToAfter;
    }
  EXPECT_GE(ToHeader, 3u) << "entry + latch + continue";
  EXPECT_GE(ToAfter, 2u) << "loop exit + break";
}

TEST(CfgTest, ShortCircuitAndDecomposesIntoChainedConditions) {
  js::ParseResult R = parseJs("if (a && b) { x = 1; } y = 2;");
  Cfg G = lowerChecked(*R.Ast, "and");
  // Two atomic conditions, each with a (true, false) pair.
  EXPECT_EQ(conditionalEdgeCount(G), 4u);
  std::set<const js::Expr *> Conds;
  for (const CfgBlock &B : G.Blocks)
    for (const CfgEdge &E : B.Succs)
      if (E.Cond)
        Conds.insert(E.Cond);
  EXPECT_EQ(Conds.size(), 2u);
  for (const js::Expr *Cond : Conds)
    EXPECT_TRUE(js::isa<js::Ident>(Cond));
}

TEST(CfgTest, ShortCircuitOrDecomposesIntoChainedConditions) {
  js::ParseResult R = parseJs("if (a || b) { x = 1; } y = 2;");
  Cfg G = lowerChecked(*R.Ast, "or");
  EXPECT_EQ(conditionalEdgeCount(G), 4u);
}

TEST(CfgTest, NotSwapsBranchTargetsNotEdgeCount) {
  js::ParseResult NegR = parseJs("if (!a) { x = 1; } y = 2;");
  Cfg Neg = lowerChecked(*NegR.Ast, "not");
  js::ParseResult PosR = parseJs("if (a) { x = 1; } y = 2;");
  Cfg Pos = lowerChecked(*PosR.Ast, "plain");
  // `!` costs no blocks or edges; it only flips polarity.
  EXPECT_EQ(Neg.Blocks.size(), Pos.Blocks.size());
  EXPECT_EQ(conditionalEdgeCount(Neg), conditionalEdgeCount(Pos));
  // The edge condition is the atomic `a`, not the Unary.
  for (const CfgBlock &B : Neg.Blocks)
    for (const CfgEdge &E : B.Succs)
      if (E.Cond)
        EXPECT_TRUE(js::isa<js::Ident>(E.Cond));
}

TEST(CfgTest, SwitchCaseTestsAreNotConditionEdges) {
  js::ParseResult R = parseJs(
      "switch (v) {"
      "case 0: a = 1; break;"
      "case 1: b = 2;"
      "default: c = 3;"
      "} done = 1;");
  Cfg G = lowerChecked(*R.Ast, "switch");
  // `case 0:` is an equality dispatch, not a guard: no edge in the
  // whole graph carries a condition.
  EXPECT_EQ(conditionalEdgeCount(G), 0u);
  // Fallthrough: case 1's body flows into the default body, so the
  // default body block has at least two predecessors (dispatch + fall).
  EXPECT_TRUE(G.BackEdges.empty());
}

TEST(CfgTest, ReturnJumpsToExit) {
  // `return` only parses inside a function; lower the function body.
  js::ParseResult R =
      parseJs("function f() { if (a) { return 0; } x = 1; }");
  const auto *Decl =
      js::dyn_cast<js::FunctionDecl>(R.Ast->Body[0].get());
  ASSERT_NE(Decl, nullptr);
  Cfg G = Cfg::lower(Decl->Fn);
  // The exit has at least two predecessors: the return and the fall-off.
  EXPECT_GE(G.exit().Preds.size(), 2u);
  EXPECT_TRUE(G.exit().Succs.empty());
}

TEST(CfgTest, TryCatchKeepsCatchReachable) {
  js::ParseResult R = parseJs(
      "try { x = risky; } catch (e) { y = 1; } z = 2;");
  Cfg G = lowerChecked(*R.Ast, "try-catch");
  // Every statement is reachable: the catch block hangs off the state
  // before the try body.
  std::set<uint32_t> Reach(G.rpo().begin(), G.rpo().end());
  for (const auto &[S, B] : G.BlockOf) {
    (void)S;
    EXPECT_TRUE(Reach.count(B)) << "unreachable lowered statement";
  }
}

TEST(CfgTest, NestedFunctionBodiesStayOutOfTheGraph) {
  js::ParseResult R = parseJs(
      "function f() { inner = 1; while (a) { inner = 2; } }"
      "outer = 1;");
  Cfg G = lowerChecked(*R.Ast, "nested-fn");
  // Only the declaration and the outer assignment lower; the body
  // statements (and their loop) belong to the function's own Cfg.
  EXPECT_EQ(G.BlockOf.size(), 2u);
  EXPECT_TRUE(G.BackEdges.empty());
  const auto *Decl =
      js::dyn_cast<js::FunctionDecl>(R.Ast->Body[0].get());
  ASSERT_NE(Decl, nullptr);
  Cfg Inner = Cfg::lower(Decl->Fn);
  EXPECT_EQ(Inner.BackEdges.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Property-style: invariants over corpus scripts and a grab bag
//===----------------------------------------------------------------------===//

TEST(CfgPropertyTest, InvariantsHoldOnHandWrittenGrabBag) {
  const char *Cases[] = {
      "",
      ";",
      "x = 1;",
      "if (a) { if (b) { if (c) { x = 1; } } }",
      "for (var i = 0; i < 10; i++) { if (i % 2 == 0) { continue; }"
      " total = total + i; }",
      "do { x--; if (x < 0) { break; } } while (x);",
      "switch (k) { default: d = 1; }",
      "switch (k) { case 'a': x = 1; case 'b': y = 2; break;"
      " case 'c': z = 3; }",
      "while (a && b || !c) { x = 1; }",
      "try { risky(); } catch (e) { handled = 1; } finally { f = 1; }",
      "throw boom;",
      "for (k in obj) { seen = k; }",
      "function g() { if (a) { return 1; } else { return 2; } }",
      "var f = function () { while (x) { y = 1; } };",
  };
  for (const char *Src : Cases) {
    js::ParseResult R = parseJs(Src);
    ASSERT_TRUE(R.ok());
    lowerChecked(*R.Ast, Src);
  }
}

TEST(CfgPropertyTest, InvariantsHoldOnCorpusScripts) {
  // The generated sites exercise polling loops, guarded calls, interval
  // monitors, and dead-guard timers; lower every external script of the
  // first sites and run the full invariant suite.
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(2012);
  Corpus.resize(12);
  size_t Checked = 0;
  for (const sites::GeneratedSite &Site : Corpus) {
    for (const sites::SiteResource &Res : Site.Resources) {
      if (Res.Url.size() < 3 ||
          Res.Url.compare(Res.Url.size() - 3, 3, ".js") != 0)
        continue;
      js::ParseResult R = js::Parser::parseProgram(Res.Body);
      ASSERT_TRUE(R.ok()) << Res.Url;
      lowerChecked(*R.Ast, Site.Name + "/" + Res.Url);
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 10u);
}

} // namespace

//===- tests/tostring_exhaustive_test.cpp - Enum string table coverage ---------===//
//
// Guards the human-readable enum string tables against silently rotting
// when an enumerator is added. Two layers:
//
//  * Compile time: each all*() function below enumerates its enum in a
//    switch with no default, and this target builds with -Werror=switch
//    (see tests/CMakeLists.txt), so adding an enumerator without
//    extending the list here is a build error, not a fallthrough.
//
//  * Run time: every enumerator's toString must be non-empty, distinct,
//    and must not be the "unknown" fallback, so extending the list here
//    without extending the real string table is a test failure.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalyzer.h"
#include "analysis/StaticHb.h"
#include "detect/Prediction.h"
#include "detect/RaceDetector.h"
#include "hb/HbGraph.h"
#include "hb/PartialOrderEngine.h"
#include "sample/Sampling.h"
#include "sites/Patterns.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace wr;

namespace {

/// Appends every HbRule enumerator exactly once. The switch is the
/// compile-time exhaustiveness check; it falls through all cases to a
/// single return so each case stays a one-liner.
std::vector<HbRule> allHbRules() {
  std::vector<HbRule> All;
  auto Covered = [](HbRule R) {
    switch (R) {
    case HbRule::R1a_ParseOrder:
    case HbRule::R1b_InlineScript:
    case HbRule::R1c_SyncScriptLoad:
    case HbRule::R2_CreateBeforeExe:
    case HbRule::R3_ExeBeforeLoad:
    case HbRule::R4_CreateBeforeDefer:
    case HbRule::R5_DeferOrder:
    case HbRule::R6_FrameCreate:
    case HbRule::R7_FrameLoad:
    case HbRule::R8_TargetCreated:
    case HbRule::R9_DispatchOrder:
    case HbRule::R10_AjaxSend:
    case HbRule::R11_DclBeforeLoad:
    case HbRule::R12_ParseBeforeDcl:
    case HbRule::R13_InlineBeforeDcl:
    case HbRule::R14_ScriptLoadBeforeDcl:
    case HbRule::R15_ElemLoadBeforeWindowLoad:
    case HbRule::R16_SetTimeout:
    case HbRule::R17_SetInterval:
    case HbRule::RA_DispatchChain:
    case HbRule::RA_InlineSplit:
    case HbRule::RProgram:
      return R;
    }
    return R;
  };
  for (HbRule R :
       {HbRule::R1a_ParseOrder, HbRule::R1b_InlineScript,
        HbRule::R1c_SyncScriptLoad, HbRule::R2_CreateBeforeExe,
        HbRule::R3_ExeBeforeLoad, HbRule::R4_CreateBeforeDefer,
        HbRule::R5_DeferOrder, HbRule::R6_FrameCreate, HbRule::R7_FrameLoad,
        HbRule::R8_TargetCreated, HbRule::R9_DispatchOrder,
        HbRule::R10_AjaxSend, HbRule::R11_DclBeforeLoad,
        HbRule::R12_ParseBeforeDcl, HbRule::R13_InlineBeforeDcl,
        HbRule::R14_ScriptLoadBeforeDcl,
        HbRule::R15_ElemLoadBeforeWindowLoad, HbRule::R16_SetTimeout,
        HbRule::R17_SetInterval, HbRule::RA_DispatchChain,
        HbRule::RA_InlineSplit, HbRule::RProgram})
    All.push_back(Covered(R));
  return All;
}

std::vector<detect::RaceKind> allRaceKinds() {
  std::vector<detect::RaceKind> All;
  auto Covered = [](detect::RaceKind K) {
    switch (K) {
    case detect::RaceKind::Html:
    case detect::RaceKind::Function:
    case detect::RaceKind::Variable:
    case detect::RaceKind::EventDispatch:
      return K;
    }
    return K;
  };
  for (detect::RaceKind K :
       {detect::RaceKind::Html, detect::RaceKind::Function,
        detect::RaceKind::Variable, detect::RaceKind::EventDispatch})
    All.push_back(Covered(K));
  return All;
}

std::vector<analysis::SourceKind> allSourceKinds() {
  using analysis::SourceKind;
  std::vector<SourceKind> All;
  auto Covered = [](SourceKind K) {
    switch (K) {
    case SourceKind::Parse:
    case SourceKind::SyncScript:
    case SourceKind::DeferScript:
    case SourceKind::AsyncScript:
    case SourceKind::TimerCallback:
    case SourceKind::IntervalCallback:
    case SourceKind::XhrCallback:
    case SourceKind::EventDispatch:
    case SourceKind::UserInput:
      return K;
    }
    return K;
  };
  for (SourceKind K :
       {SourceKind::Parse, SourceKind::SyncScript, SourceKind::DeferScript,
        SourceKind::AsyncScript, SourceKind::TimerCallback,
        SourceKind::IntervalCallback, SourceKind::XhrCallback,
        SourceKind::EventDispatch, SourceKind::UserInput})
    All.push_back(Covered(K));
  return All;
}

std::vector<analysis::StaticLocKind> allStaticLocKinds() {
  using analysis::StaticLocKind;
  std::vector<StaticLocKind> All;
  auto Covered = [](StaticLocKind K) {
    switch (K) {
    case StaticLocKind::Var:
    case StaticLocKind::FormField:
    case StaticLocKind::Elem:
    case StaticLocKind::Handler:
      return K;
    }
    return K;
  };
  for (StaticLocKind K : {StaticLocKind::Var, StaticLocKind::FormField,
                          StaticLocKind::Elem, StaticLocKind::Handler})
    All.push_back(Covered(K));
  return All;
}

std::vector<analysis::GuardKind> allGuardKinds() {
  using analysis::GuardKind;
  std::vector<GuardKind> All;
  auto Covered = [](GuardKind K) {
    switch (K) {
    case GuardKind::Truthy:
    case GuardKind::Defined:
    case GuardKind::TypeCheck:
    case GuardKind::ConstFalse:
    case GuardKind::Opaque:
      return K;
    }
    return K;
  };
  for (GuardKind K : {GuardKind::Truthy, GuardKind::Defined,
                      GuardKind::TypeCheck, GuardKind::ConstFalse,
                      GuardKind::Opaque})
    All.push_back(Covered(K));
  return All;
}

std::vector<analysis::GuardClass> allGuardClasses() {
  using analysis::GuardClass;
  std::vector<GuardClass> All;
  auto Covered = [](GuardClass C) {
    switch (C) {
    case GuardClass::Unguarded:
    case GuardClass::GuardedOneSide:
    case GuardClass::GuardedBothSides:
      return C;
    }
    return C;
  };
  for (GuardClass C : {GuardClass::Unguarded, GuardClass::GuardedOneSide,
                       GuardClass::GuardedBothSides})
    All.push_back(Covered(C));
  return All;
}

std::vector<sites::PatternKind> allPatternKinds() {
  using sites::PatternKind;
  std::vector<PatternKind> All;
  auto Covered = [](PatternKind K) {
    switch (K) {
    case PatternKind::HtmlLookupHarmful:
    case PatternKind::HtmlPollingBenign:
    case PatternKind::FunctionCallHarmful:
    case PatternKind::FunctionCallGuarded:
    case PatternKind::FormValueHarmful:
    case PatternKind::FormValueGuarded:
    case PatternKind::FormValueReadBenign:
    case PatternKind::GomezMonitorHarmful:
    case PatternKind::DelayedSingleBenign:
    case PatternKind::VariableNoiseBenign:
    case PatternKind::HoverMenuNoiseBenign:
    case PatternKind::DeadGuardBenign:
    case PatternKind::PostFirstRaceBenign:
    case PatternKind::IntervalSkipBenign:
      return K;
    }
    return K;
  };
  for (PatternKind K :
       {PatternKind::HtmlLookupHarmful, PatternKind::HtmlPollingBenign,
        PatternKind::FunctionCallHarmful, PatternKind::FunctionCallGuarded,
        PatternKind::FormValueHarmful, PatternKind::FormValueGuarded,
        PatternKind::FormValueReadBenign, PatternKind::GomezMonitorHarmful,
        PatternKind::DelayedSingleBenign, PatternKind::VariableNoiseBenign,
        PatternKind::HoverMenuNoiseBenign, PatternKind::DeadGuardBenign,
        PatternKind::PostFirstRaceBenign, PatternKind::IntervalSkipBenign})
    All.push_back(Covered(K));
  return All;
}

std::vector<EngineKind> allEngineKinds() {
  std::vector<EngineKind> All;
  auto Covered = [](EngineKind K) {
    switch (K) {
    case EngineKind::Hb:
    case EngineKind::HbDfs:
    case EngineKind::Shb:
    case EngineKind::Wcp:
      return K;
    }
    return K;
  };
  for (EngineKind K : {EngineKind::Hb, EngineKind::HbDfs, EngineKind::Shb,
                       EngineKind::Wcp})
    All.push_back(Covered(K));
  return All;
}

std::vector<Ordering> allOrderings() {
  std::vector<Ordering> All;
  auto Covered = [](Ordering O) {
    switch (O) {
    case Ordering::Before:
    case Ordering::After:
    case Ordering::Concurrent:
      return O;
    }
    return O;
  };
  for (Ordering O :
       {Ordering::Before, Ordering::After, Ordering::Concurrent})
    All.push_back(Covered(O));
  return All;
}

std::vector<sample::SamplingStrategy> allSamplingStrategies() {
  using sample::SamplingStrategy;
  std::vector<SamplingStrategy> All;
  auto Covered = [](SamplingStrategy S) {
    switch (S) {
    case SamplingStrategy::PerLocation:
    case SamplingStrategy::PerPair:
    case SamplingStrategy::Adaptive:
      return S;
    }
    return S;
  };
  for (SamplingStrategy S :
       {SamplingStrategy::PerLocation, SamplingStrategy::PerPair,
        SamplingStrategy::Adaptive})
    All.push_back(Covered(S));
  return All;
}

std::vector<detect::PredictionVerdict> allPredictionVerdicts() {
  using detect::PredictionVerdict;
  std::vector<PredictionVerdict> All;
  auto Covered = [](PredictionVerdict V) {
    switch (V) {
    case PredictionVerdict::Observed:
    case PredictionVerdict::Predicted:
      return V;
    }
    return V;
  };
  for (PredictionVerdict V :
       {PredictionVerdict::Observed, PredictionVerdict::Predicted})
    All.push_back(Covered(V));
  return All;
}

/// Shared runtime check: every name rendered, none the fallback, all
/// distinct.
template <typename EnumT, typename ToStringFn>
void expectCompleteStringTable(const std::vector<EnumT> &All,
                               ToStringFn ToString,
                               const std::string &Fallback) {
  std::set<std::string> Seen;
  for (EnumT Value : All) {
    std::string Name = ToString(Value);
    EXPECT_FALSE(Name.empty())
        << "enumerator " << static_cast<int>(Value) << " has no name";
    EXPECT_NE(Name, Fallback)
        << "enumerator " << static_cast<int>(Value)
        << " hit the fallback string";
    EXPECT_TRUE(Seen.insert(Name).second)
        << "duplicate name: " << Name;
  }
  EXPECT_EQ(Seen.size(), All.size());
}

TEST(ToStringExhaustiveTest, HbRuleNamesAreComplete) {
  expectCompleteStringTable(
      allHbRules(), [](HbRule R) { return toString(R); }, "unknown rule");
}

TEST(ToStringExhaustiveTest, HbRuleSpotChecks) {
  EXPECT_STREQ(toString(HbRule::R1a_ParseOrder), "rule 1a (parse order)");
  EXPECT_STREQ(toString(HbRule::RProgram), "program order");
}

TEST(ToStringExhaustiveTest, RaceKindNamesAreComplete) {
  expectCompleteStringTable(
      allRaceKinds(),
      [](detect::RaceKind K) { return detect::toString(K); }, "unknown");
}

TEST(ToStringExhaustiveTest, SourceKindNamesAreComplete) {
  expectCompleteStringTable(
      allSourceKinds(),
      [](analysis::SourceKind K) { return analysis::toString(K); },
      "unknown");
}

TEST(ToStringExhaustiveTest, StaticLocKindNamesAreComplete) {
  expectCompleteStringTable(
      allStaticLocKinds(),
      [](analysis::StaticLocKind K) { return analysis::toString(K); },
      "unknown");
}

TEST(ToStringExhaustiveTest, GuardKindNamesAreComplete) {
  expectCompleteStringTable(
      allGuardKinds(),
      [](analysis::GuardKind K) { return analysis::toString(K); }, "?");
}

TEST(ToStringExhaustiveTest, GuardClassNamesAreComplete) {
  expectCompleteStringTable(
      allGuardClasses(),
      [](analysis::GuardClass C) { return analysis::toString(C); },
      "unknown");
}

TEST(ToStringExhaustiveTest, GuardClassSpotChecks) {
  EXPECT_STREQ(analysis::toString(analysis::GuardClass::GuardedBothSides),
               "guarded-both-sides");
}

TEST(ToStringExhaustiveTest, PatternKindNamesAreComplete) {
  expectCompleteStringTable(
      allPatternKinds(),
      [](sites::PatternKind K) { return sites::toString(K); }, "unknown");
}

TEST(ToStringExhaustiveTest, EngineKindNamesAreComplete) {
  expectCompleteStringTable(
      allEngineKinds(), [](EngineKind K) { return toString(K); },
      "unknown");
}

TEST(ToStringExhaustiveTest, EngineKindNamesRoundTripThroughParse) {
  // The CLI spellings must parse back to the exact enumerator.
  for (EngineKind K : allEngineKinds()) {
    EngineKind Parsed = EngineKind::Hb;
    EXPECT_TRUE(parseEngineKind(toString(K), Parsed)) << toString(K);
    EXPECT_EQ(Parsed, K);
  }
  EngineKind Untouched = EngineKind::Wcp;
  EXPECT_FALSE(parseEngineKind("unknown", Untouched));
  EXPECT_FALSE(parseEngineKind("", Untouched));
  EXPECT_EQ(Untouched, EngineKind::Wcp);
}

TEST(ToStringExhaustiveTest, SamplingStrategyNamesAreComplete) {
  expectCompleteStringTable(
      allSamplingStrategies(),
      [](sample::SamplingStrategy S) { return sample::toString(S); },
      "unknown");
}

TEST(ToStringExhaustiveTest, SamplingStrategyNamesRoundTripThroughParse) {
  // The CLI spellings must parse back to the exact enumerator.
  for (sample::SamplingStrategy S : allSamplingStrategies()) {
    sample::SamplingStrategy Parsed = sample::SamplingStrategy::Adaptive;
    EXPECT_TRUE(sample::parseSamplingStrategy(sample::toString(S), Parsed))
        << sample::toString(S);
    EXPECT_EQ(Parsed, S);
  }
  sample::SamplingStrategy Untouched = sample::SamplingStrategy::PerPair;
  EXPECT_FALSE(sample::parseSamplingStrategy("unknown", Untouched));
  EXPECT_FALSE(sample::parseSamplingStrategy("", Untouched));
  EXPECT_EQ(Untouched, sample::SamplingStrategy::PerPair);
}

TEST(ToStringExhaustiveTest, OrderingNamesAreComplete) {
  expectCompleteStringTable(
      allOrderings(), [](Ordering O) { return toString(O); }, "unknown");
}

TEST(ToStringExhaustiveTest, PredictionVerdictNamesAreComplete) {
  expectCompleteStringTable(
      allPredictionVerdicts(),
      [](detect::PredictionVerdict V) { return detect::toString(V); },
      "unknown");
}

} // namespace

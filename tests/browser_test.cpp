//===- tests/browser_test.cpp - end-to-end browser + detector tests ----------===//
//
// These tests drive full page loads through the simulated engine and check
// both browser behavior (script execution, event ordering) and the races
// the detector reports - including each motivating example of the paper's
// Section 2 (Figures 1-5).
//
//===----------------------------------------------------------------------===//

#include "detect/Filters.h"
#include "detect/RaceDetector.h"
#include "detect/Report.h"
#include "instr/TraceLog.h"
#include "runtime/Browser.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::rt;
using namespace wr::detect;

namespace {

class BrowserTest : public ::testing::Test {
protected:
  BrowserTest() { reset(BrowserOptions()); }

  void reset(BrowserOptions Opts) {
    B = std::make_unique<Browser>(Opts);
    D = std::make_unique<RaceDetector>(B->hb(), B->interner());
    B->addSink(D.get());
  }

  /// Registers index.html plus auxiliary resources, loads, runs to
  /// quiescence.
  void load(const std::string &Html,
            std::vector<std::pair<std::string, std::string>> Resources = {},
            VirtualTime AuxLatency = 1000) {
    B->network().addResource("index.html", Html, 10);
    for (auto &[Url, Body] : Resources)
      B->network().addResource(Url, Body, AuxLatency);
    B->loadPage("index.html");
    B->runToQuiescence();
  }

  /// Value of a global variable as a display string.
  std::string global(const std::string &Name) {
    js::Value *V = B->interp().globalEnv()->findOwn(Name);
    return V ? js::toDisplayString(*V) : "<undeclared>";
  }

  Element *byId(const std::string &Id) {
    return B->mainWindow()->document().getElementById(Id);
  }

  std::unique_ptr<Browser> B;
  std::unique_ptr<RaceDetector> D;
};

// ---------------------------------------------------------------------------
// Basic engine behavior
// ---------------------------------------------------------------------------

TEST_F(BrowserTest, InlineScriptRuns) {
  load("<script>var x = 40 + 2;</script>");
  EXPECT_EQ(global("x"), "42");
  EXPECT_TRUE(B->mainWindow()->loadFired());
  EXPECT_TRUE(B->crashLog().empty());
}

TEST_F(BrowserTest, ScriptsSeeEarlierDom) {
  load("<div id=\"box\"></div>"
       "<script>var found = document.getElementById('box') != null;"
       "var missing = document.getElementById('later') == null;</script>"
       "<div id=\"later\"></div>");
  EXPECT_EQ(global("found"), "true");
  EXPECT_EQ(global("missing"), "true"); // Not yet parsed when script ran.
}

TEST_F(BrowserTest, SyncExternalScriptBlocksParsing) {
  load("<script src=\"lib.js\"></script>"
       "<script>var seen = libValue;</script>",
      {{"lib.js", "var libValue = 123;"}});
  EXPECT_EQ(global("seen"), "123");
}

TEST_F(BrowserTest, DeferredScriptsRunInOrderAfterParsing) {
  load("<script src=\"d1.js\" defer=\"true\"></script>"
       "<script src=\"d2.js\" defer=\"true\"></script>"
       "<div id=\"marker\"></div>"
       "<script>var order = '';</script>",
      {{"d1.js", "order += 'a' + (document.getElementById('marker') != null "
                 "? '1' : '0');"},
       {"d2.js", "order += 'b';"}});
  // d2 arrives before d1 (same latency, but order must still be d1, d2);
  // both run after the static DOM is complete.
  EXPECT_EQ(global("order"), "a1b");
}

TEST_F(BrowserTest, DeferredScriptsPreserveOrderWhenArrivalsFlip) {
  B->network().addResource("index.html",
                           "<script src=\"d1.js\" defer=\"true\"></script>"
                           "<script src=\"d2.js\" defer=\"true\"></script>"
                           "<script>var order = '';</script>",
                           10);
  B->network().addResource("d1.js", "order += '1';", 5000);
  B->network().addResource("d2.js", "order += '2';", 100);
  B->loadPage("index.html");
  B->runToQuiescence();
  EXPECT_EQ(global("order"), "12");
}

TEST_F(BrowserTest, AsyncScriptRuns) {
  load("<script src=\"a.js\" async=\"true\"></script>"
       "<script>var x = 1;</script>",
      {{"a.js", "var asyncRan = true;"}});
  EXPECT_EQ(global("asyncRan"), "true");
}

TEST_F(BrowserTest, DomContentLoadedAndLoadOrder) {
  load("<script>"
       "var log = '';"
       "document.addEventListener('DOMContentLoaded', function() {"
       "  log += 'dcl(' + document.readyState + ')';"
       "});"
       "window.addEventListener('load', function() {"
       "  log += ' load';"
       "});"
       "</script>"
       "<img src=\"pic.png\" />",
      {{"pic.png", "PNG"}});
  EXPECT_EQ(global("log"), "dcl(interactive) load");
}

TEST_F(BrowserTest, ImgDelaysWindowLoad) {
  load("<img src=\"slow.png\" onload=\"window.imgDone = true;\" />"
       "<script>window.addEventListener('load', function() {"
       "  window.sawImgAtLoad = window.imgDone;"
       "});</script>",
      {{"slow.png", "PNG"}}, /*AuxLatency=*/5000);
  // The window load event must come after the image load (rule 15).
  js::Value *V = B->mainWindow()->windowObject()->findOwnProperty(
      "sawImgAtLoad");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
}

TEST_F(BrowserTest, TimersFireInOrder) {
  load("<script>"
       "var log = '';"
       "setTimeout(function() { log += 'b'; }, 20);"
       "setTimeout(function() { log += 'a'; }, 10);"
       "setTimeout('log += \"s\";', 30);"
       "</script>");
  EXPECT_EQ(global("log"), "abs");
}

TEST_F(BrowserTest, IntervalRunsAndClears) {
  load("<script>"
       "var n = 0;"
       "var id = setInterval(function() {"
       "  n++;"
       "  if (n >= 3) clearInterval(id);"
       "}, 10);"
       "</script>");
  EXPECT_EQ(global("n"), "3");
}

TEST_F(BrowserTest, ClearTimeoutPreventsCallback) {
  load("<script>"
       "var ran = false;"
       "var id = setTimeout(function() { ran = true; }, 10);"
       "clearTimeout(id);"
       "</script>");
  EXPECT_EQ(global("ran"), "false");
}

TEST_F(BrowserTest, XhrDeliversResponse) {
  load("<script>"
       "var got = '';"
       "var xhr = new XMLHttpRequest();"
       "xhr.open('GET', 'data.json');"
       "xhr.onreadystatechange = function() {"
       "  if (xhr.readyState == 4) got = xhr.responseText;"
       "};"
       "xhr.send();"
       "</script>",
      {{"data.json", "{\"v\":7}"}});
  EXPECT_EQ(global("got"), "{\"v\":7}");
}

TEST_F(BrowserTest, DynamicScriptInsertionExecutes) {
  load("<script>"
       "var s = document.createElement('script');"
       "s.src = 'late.js';"
       "document.body.appendChild(s);"
       "</script>",
      {{"late.js", "var lateRan = true;"}});
  EXPECT_EQ(global("lateRan"), "true");
}

TEST_F(BrowserTest, InnerHtmlParsesFragment) {
  load("<div id=\"host\"></div>"
       "<script>"
       "document.getElementById('host').innerHTML ="
       "  '<span id=\"child\">hi</span>';"
       "var childOk = document.getElementById('child') != null;"
       "</script>");
  EXPECT_EQ(global("childOk"), "true");
}

TEST_F(BrowserTest, EventCaptureTargetBubbleOrder) {
  load("<div id=\"outer\"><button id=\"btn\"></button></div>"
       "<script>"
       "var log = '';"
       "var outer = document.getElementById('outer');"
       "var btn = document.getElementById('btn');"
       "outer.addEventListener('click', function() { log += 'C'; }, true);"
       "outer.addEventListener('click', function() { log += 'B'; }, false);"
       "btn.addEventListener('click', function() { log += 'T'; });"
       "btn.onclick = function() { log += 's'; };"
       "</script>");
  B->userClick(byId("btn"));
  B->runToQuiescence();
  // Capture on outer, then target (slot first), then bubble on outer.
  EXPECT_EQ(global("log"), "CsTB");
}

TEST_F(BrowserTest, InlineDispatchSplitsOperation) {
  TraceLog Trace;
  B->addSink(&Trace);
  load("<button id=\"b\" onclick=\"window.clicked = true;\"></button>"
       "<script>document.getElementById('b').click(); var after = 1;"
       "</script>");
  js::Value *V =
      B->mainWindow()->windowObject()->findOwnProperty("clicked");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
  // A ScriptSlice operation must exist (Appendix A splitting).
  bool SawSlice = false;
  for (size_t Op = 1; Op <= B->hb().numOperations(); ++Op)
    if (B->hb().operation(static_cast<OpId>(Op)).Kind ==
        OperationKind::ScriptSlice)
      SawSlice = true;
  EXPECT_TRUE(SawSlice);
}

TEST_F(BrowserTest, UncaughtExceptionTerminatesOperationOnly) {
  load("<script>nonexistentFunction();</script>"
       "<script>var second = 'ran';</script>");
  EXPECT_EQ(global("second"), "ran"); // Hidden crash (Sec. 2.3).
  ASSERT_EQ(B->crashLog().size(), 1u);
  EXPECT_NE(B->crashLog()[0].find("ReferenceError"), std::string::npos);
}

TEST_F(BrowserTest, CrashPreservesPriorMutations) {
  // Sec. 2.3: mutations before the crash persist.
  load("<script>var state = 'before'; state = 'mutated';"
       "null.x = 1; state = 'after';</script>");
  EXPECT_EQ(global("state"), "mutated");
}

TEST_F(BrowserTest, JavascriptLinkDefaultAction) {
  load("<a id=\"go\" href=\"javascript:window.navigated = true;\">go</a>");
  B->userClick(byId("go"));
  B->runToQuiescence();
  js::Value *V =
      B->mainWindow()->windowObject()->findOwnProperty("navigated");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
}

TEST_F(BrowserTest, EvalRunsInGlobalScope) {
  load("<script>"
       "var r = eval('var evald = 20; evald + 22');"
       "var viaEval = evald;"
       "</script>");
  EXPECT_EQ(global("r"), "42");
  EXPECT_EQ(global("viaEval"), "20");
  EXPECT_TRUE(B->crashLog().empty());
}

TEST_F(BrowserTest, EvalAccessesAreInstrumented) {
  // Accesses inside eval'd code feed the detector like any others
  // (Sec. 1: the dynamic approach "simply observes" eval).
  load("<script>"
       "setTimeout(function() { eval('evalShared = 1;'); }, 10);"
       "setTimeout(function() { eval('var v = evalShared;'); }, 20);"
       "</script>");
  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (Loc && Loc->Name == "evalShared")
      Found = true;
  }
  EXPECT_TRUE(Found) << describeRaces(D->races(), B->hb());
}

TEST_F(BrowserTest, EvalSyntaxErrorThrows) {
  load("<script>"
       "var caught = '';"
       "try { eval('%%%'); } catch (e) { caught = e.name; }"
       "</script>");
  EXPECT_EQ(global("caught"), "SyntaxError");
}

TEST_F(BrowserTest, DocumentWriteAppends) {
  load("<script>document.write('<div id=\"written\">hi</div>');"
       "var found = document.getElementById('written') != null;"
       "</script>");
  EXPECT_EQ(global("found"), "true");
}

TEST_F(BrowserTest, DocumentWriteInlineScriptRuns) {
  load("<script>"
       "document.write('<script>var wrote = 5;</scr' + 'ipt>');"
       "</script>");
  EXPECT_EQ(global("wrote"), "5");
}

TEST_F(BrowserTest, DateUsesVirtualClock) {
  load("<script>"
       "var t0 = Date.now();"
       "setTimeout(function() {"
       "  window.elapsed = new Date().getTime() - t0;"
       "}, 25);"
       "</script>");
  js::Value *V =
      B->mainWindow()->windowObject()->findOwnProperty("elapsed");
  ASSERT_NE(V, nullptr);
  EXPECT_GE(V->asNumber(), 25.0); // Virtual milliseconds.
  EXPECT_LT(V->asNumber(), 100.0);
}

TEST_F(BrowserTest, AlertCollected) {
  load("<script>alert('hello ' + 1);</script>");
  ASSERT_EQ(B->alerts().size(), 1u);
  EXPECT_EQ(B->alerts()[0], "hello 1");
}

// ---------------------------------------------------------------------------
// Figure 1: variable race via two iframes
// ---------------------------------------------------------------------------

TEST_F(BrowserTest, Fig1VariableRace) {
  B->network().addResource("index.html",
                           "<script>x = 1;</script>"
                           "<iframe src=\"a.html\"></iframe>"
                           "<iframe src=\"b.html\"></iframe>",
                           10);
  B->network().addResource("a.html", "<script>x = 2;</script>", 1000);
  B->network().addResource("b.html", "<script>alert(x);</script>", 2000);
  B->loadPage("index.html");
  B->runToQuiescence();

  // Behavior: with a.html faster, b sees 2.
  ASSERT_EQ(B->alerts().size(), 1u);
  EXPECT_EQ(B->alerts()[0], "2");

  // Exactly one variable race, on global x: a's write vs b's read. The
  // initial write x=1 does NOT race (it precedes both iframes).
  std::vector<Race> VarRaces;
  for (const Race &R : D->races())
    if (R.Kind == RaceKind::Variable)
      VarRaces.push_back(R);
  ASSERT_EQ(VarRaces.size(), 1u);
  const auto *Loc = std::get_if<JSVarLoc>(&VarRaces[0].Loc);
  ASSERT_NE(Loc, nullptr);
  EXPECT_EQ(Loc->Name, "x");
  EXPECT_EQ(Loc->Container, 0u); // Global scope.
  EXPECT_EQ(VarRaces[0].First.Kind, AccessKind::Write);
  EXPECT_EQ(VarRaces[0].Second.Kind, AccessKind::Read);
}

TEST_F(BrowserTest, Fig1OppositeOrderStillRaces) {
  // Flip the latencies: b.html runs first and alerts 1; the race is
  // detected regardless of the observed order.
  B->network().addResource("index.html",
                           "<script>x = 1;</script>"
                           "<iframe src=\"a.html\"></iframe>"
                           "<iframe src=\"b.html\"></iframe>",
                           10);
  B->network().addResource("a.html", "<script>x = 2;</script>", 2000);
  B->network().addResource("b.html", "<script>alert(x);</script>", 1000);
  B->loadPage("index.html");
  B->runToQuiescence();
  ASSERT_EQ(B->alerts().size(), 1u);
  EXPECT_EQ(B->alerts()[0], "1");
  size_t VarRaces = 0;
  for (const Race &R : D->races())
    if (R.Kind == RaceKind::Variable)
      ++VarRaces;
  EXPECT_EQ(VarRaces, 1u);
}

// ---------------------------------------------------------------------------
// Figure 2: Southwest form-field race
// ---------------------------------------------------------------------------

TEST_F(BrowserTest, Fig2FormFieldRace) {
  load("<input type=\"text\" id=\"depart\" />"
       "<script>document.getElementById('depart').value ="
       "  'City of Departure';</script>");
  // Simulated user typing (the automatic exploration of Sec. 5.2.2).
  B->userType(byId("depart"), "Boston");
  B->runToQuiescence();

  // A variable race on the field's value must be reported, and it
  // involves a form field, so it survives the form filter.
  std::vector<Race> Filtered = filterFormRaces(D->races());
  bool Found = false;
  for (const Race &R : Filtered) {
    if (R.Kind != RaceKind::Variable)
      continue;
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (Loc && Loc->Name == "value")
      Found = true;
  }
  EXPECT_TRUE(Found) << describeRaces(D->races(), B->hb());
}

TEST_F(BrowserTest, Fig2GuardedWriteFilteredOut) {
  // A script that checks the field before writing (read-before-write in
  // the same operation) is filtered as harmless (Sec. 5.3 refinement).
  load("<input type=\"text\" id=\"q\" />"
       "<script>"
       "var f = document.getElementById('q');"
       "if (f.value == '') { f.value = 'hint'; }"
       "</script>");
  B->userType(byId("q"), "user text");
  B->runToQuiescence();
  std::vector<Race> Filtered = filterFormRaces(D->races());
  for (const Race &R : Filtered) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    EXPECT_FALSE(R.Kind == RaceKind::Variable && Loc &&
                 Loc->Name == "value" &&
                 R.Second.Origin == AccessOrigin::FormFieldWrite)
        << describeRace(R, B->hb());
  }
}

// ---------------------------------------------------------------------------
// Figure 3: Valero HTML race
// ---------------------------------------------------------------------------

TEST_F(BrowserTest, Fig3HtmlRace) {
  load("<script>"
       "function show(emailTo) {"
       "  var v = document.getElementById('dw');"
       "  v.style.display = 'block';"
       "}"
       "</script>"
       "<a id=\"send\" href=\"javascript:show('x@x.com')\">Send Email</a>"
       "<p>lots of content</p>"
       "<div id=\"dw\" style=\"display:none\"></div>");
  B->userClick(byId("send"));
  B->runToQuiescence();

  // In this quiescent run the click came after parsing, so no crash...
  EXPECT_TRUE(B->crashLog().empty());
  EXPECT_EQ(byId("dw")->getAttribute("__style_display"), "block");
  // ...but the HTML race on #dw is still detected: the lookup is
  // unordered with the element's creation.
  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<HtmlElemLoc>(&R.Loc);
    if (R.Kind == RaceKind::Html && Loc && Loc->Key == "dw")
      Found = true;
  }
  EXPECT_TRUE(Found) << describeRaces(D->races(), B->hb());
}

TEST_F(BrowserTest, Fig3CrashWhenClickWinsRace) {
  // Drive the bad schedule directly: dispatch the click while parsing is
  // suspended on a slow synchronous script, before #dw parses.
  B->network().addResource(
      "index.html",
      "<script>"
      "function show(emailTo) {"
      "  var v = document.getElementById('dw');"
      "  v.style.display = 'block';"
      "}"
      "</script>"
      "<a id=\"send\" href=\"javascript:show('x@x.com')\">Send Email</a>"
      "<script src=\"slow.js\"></script>"
      "<div id=\"dw\" style=\"display:none\"></div>",
      10);
  B->network().addResource("slow.js", "var pad = 1;", 50000);
  B->loadPage("index.html");
  // Run until the link exists but parsing is still suspended.
  while (B->loop().pendingTasks() > 0 && !byId("send"))
    B->loop().runOne();
  ASSERT_NE(byId("send"), nullptr);
  ASSERT_EQ(byId("dw"), nullptr);
  B->userClick(byId("send"));
  B->runToQuiescence();
  // The click crashed with a TypeError (null.style), invisible to the
  // user (Sec. 2.3), and the race is reported.
  ASSERT_FALSE(B->crashLog().empty());
  EXPECT_NE(B->crashLog()[0].find("TypeError"), std::string::npos);
  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<HtmlElemLoc>(&R.Loc);
    if (R.Kind == RaceKind::Html && Loc && Loc->Key == "dw")
      Found = true;
  }
  EXPECT_TRUE(Found);
}

// ---------------------------------------------------------------------------
// Figure 4: function race
// ---------------------------------------------------------------------------

TEST_F(BrowserTest, Fig4FunctionRace) {
  B->network().addResource(
      "index.html",
      "<iframe id=\"i\" src=\"sub.html\""
      " onload=\"setTimeout(doNextStep, 20)\"></iframe>"
      "<script>function doNextStep() { window.stepDone = true; }</script>",
      10);
  B->network().addResource("sub.html", "<p>sub</p>", 500);
  B->loadPage("index.html");
  B->runToQuiescence();

  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (R.Kind == RaceKind::Function && Loc && Loc->Name == "doNextStep")
      Found = true;
  }
  EXPECT_TRUE(Found) << describeRaces(D->races(), B->hb());
}

TEST_F(BrowserTest, Fig4FixedByMovingScriptAbove) {
  // The paper's fix: declare the function before the iframe; rule 1
  // orders the declaration before the iframe's parse, hence before the
  // timer creation.
  B->network().addResource(
      "index.html",
      "<script>function doNextStep() { window.stepDone = true; }</script>"
      "<iframe id=\"i\" src=\"sub.html\""
      " onload=\"setTimeout(doNextStep, 20)\"></iframe>",
      10);
  B->network().addResource("sub.html", "<p>sub</p>", 500);
  B->loadPage("index.html");
  B->runToQuiescence();
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    EXPECT_FALSE(R.Kind == RaceKind::Function && Loc &&
                 Loc->Name == "doNextStep")
        << describeRace(R, B->hb());
  }
  js::Value *V =
      B->mainWindow()->windowObject()->findOwnProperty("stepDone");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
}

// ---------------------------------------------------------------------------
// Figure 5: event dispatch race
// ---------------------------------------------------------------------------

TEST_F(BrowserTest, Fig5EventDispatchRace) {
  B->network().addResource(
      "index.html",
      "<iframe id=\"i\" src=\"a.html\"></iframe>"
      "<p>content between</p>"
      "<script>document.getElementById('i').onload ="
      "  function() { window.frameLoaded = true; };</script>",
      10);
  B->network().addResource("a.html", "<p>nested</p>", 2000);
  B->loadPage("index.html");
  B->runToQuiescence();

  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<EventHandlerLoc>(&R.Loc);
    if (R.Kind == RaceKind::EventDispatch && Loc &&
        Loc->EventType == "load")
      Found = true;
  }
  EXPECT_TRUE(Found) << describeRaces(D->races(), B->hb());
}

TEST_F(BrowserTest, Fig5NoRaceWhenHandlerInTag) {
  // Setting the handler in the tag itself is ordered by rule 8
  // (create(T) -> dispatch): no race.
  B->network().addResource(
      "index.html",
      "<iframe id=\"i\" src=\"a.html\""
      " onload=\"window.frameLoaded = true;\"></iframe>",
      10);
  B->network().addResource("a.html", "<p>nested</p>", 2000);
  B->loadPage("index.html");
  B->runToQuiescence();
  for (const Race &R : D->races())
    EXPECT_NE(R.Kind, RaceKind::EventDispatch)
        << describeRace(R, B->hb());
  js::Value *V =
      B->mainWindow()->windowObject()->findOwnProperty("frameLoaded");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
}

// ---------------------------------------------------------------------------
// Happens-before sanity via the detector (no false positives)
// ---------------------------------------------------------------------------

TEST_F(BrowserTest, NoRaceBetweenCreatorAndTimeoutCallback) {
  load("<script>var x = 1;"
       "setTimeout(function() { var y = x; x = 2; }, 10);</script>");
  EXPECT_TRUE(D->races().empty()) << describeRaces(D->races(), B->hb());
}

TEST_F(BrowserTest, TwoTimeoutCallbacksRace) {
  load("<script>"
       "setTimeout(function() { window.shared = 1; }, 10);"
       "setTimeout(function() { window.shared = 2; }, 20);"
       "</script>");
  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (Loc && Loc->Name == "shared")
      Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST_F(BrowserTest, IntervalCallbacksAreOrdered) {
  load("<script>"
       "var n = 0;"
       "var id = setInterval(function() { n++; if (n >= 5)"
       " clearInterval(id); }, 10);"
       "</script>");
  EXPECT_EQ(global("n"), "5");
  // Rule 17 orders cb_i -> cb_{i+1}: no race on n between callbacks.
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    EXPECT_FALSE(Loc && Loc->Name == "n") << describeRace(R, B->hb());
  }
}

TEST_F(BrowserTest, XhrHandlerOrderedAfterSend) {
  load("<script>"
       "var flag = 'set-before-send';"
       "var xhr = new XMLHttpRequest();"
       "xhr.open('GET', 'd.txt');"
       "xhr.onreadystatechange = function() { var v = flag; };"
       "xhr.send();"
       "</script>",
      {{"d.txt", "payload"}});
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    EXPECT_FALSE(Loc && Loc->Name == "flag") << describeRace(R, B->hb());
  }
}

TEST_F(BrowserTest, XhrRaceWithoutAjaxEdges) {
  // Ablation: with rule-10 edges disabled (the paper's own
  // implementation gap, Sec. 7), the same program reports a race.
  BrowserOptions Opts;
  Opts.EnableAjaxHbEdges = false;
  reset(Opts);
  load("<script>"
       "var flag = 'set-before-send';"
       "var xhr = new XMLHttpRequest();"
       "xhr.open('GET', 'd.txt');"
       "xhr.onreadystatechange = function() { var v = flag; };"
       "xhr.send();"
       "</script>",
      {{"d.txt", "payload"}});
  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (Loc && Loc->Name == "flag")
      Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST_F(BrowserTest, SequentialScriptsDoNotRace) {
  load("<script>var a = 1;</script>"
       "<script>a = 2;</script>"
       "<script>var b = a;</script>");
  EXPECT_TRUE(D->races().empty()) << describeRaces(D->races(), B->hb());
  EXPECT_EQ(global("b"), "2");
}

TEST_F(BrowserTest, FordPatternBenignHtmlRace) {
  // The Ford polling pattern (Sec. 6.3): setTimeout re-checks for #last;
  // when present, mutates other nodes. Reported as races (the detector
  // has no data-dependence reasoning) but crash-free.
  load("<script>"
       "function addPopUp() {"
       "  if (document.getElementById('last') != null) {"
       "    document.getElementById('menu').style.display = 'block';"
       "  } else { setTimeout(addPopUp, 250); }"
       "}"
       "addPopUp();"
       "</script>"
       "<div id=\"menu\" style=\"display:none\"></div>"
       "<div id=\"last\"></div>");
  EXPECT_TRUE(B->crashLog().empty());
  size_t HtmlRaces = 0;
  for (const Race &R : D->races())
    if (R.Kind == RaceKind::Html)
      ++HtmlRaces;
  EXPECT_GE(HtmlRaces, 1u);
  EXPECT_EQ(byId("menu")->getAttribute("__style_display"), "block");
}

TEST_F(BrowserTest, GomezPatternEventDispatchRace) {
  // The Gomez monitor (Sec. 6.3): poll document.images every 10ms and
  // attach onload handlers; images that load before the handler attaches
  // produce harmful single-dispatch races.
  load("<script>"
       "var seen = {};"
       "var polls = 0;"
       "var id = setInterval(function() {"
       "  polls++;"
       "  var imgs = document.images;"
       "  for (var i = 0; i < imgs.length; i++) {"
       "    var im = imgs[i];"
       "    if (!seen[im.id]) {"
       "      seen[im.id] = true;"
       "      im.onload = function() { window.lastLoaded = true; };"
       "    }"
       "  }"
       "  if (polls > 10) clearInterval(id);"
       "}, 10);"
       "</script>"
       "<img id=\"fast\" src=\"fast.png\" />",
      {{"fast.png", "PNG"}}, /*AuxLatency=*/3000);
  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<EventHandlerLoc>(&R.Loc);
    if (R.Kind == RaceKind::EventDispatch && Loc &&
        Loc->EventType == "load")
      Found = true;
  }
  EXPECT_TRUE(Found) << describeRaces(D->races(), B->hb());
}

} // namespace

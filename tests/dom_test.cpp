//===- tests/dom_test.cpp - DOM tree tests ---------------------------------===//

#include "dom/Dom.h"

#include <gtest/gtest.h>

using namespace wr;

namespace {

class DomTest : public ::testing::Test {
protected:
  DomTest() : Doc(1, NextNodeId) {}
  uint32_t NextNodeId = 1;
  Document Doc;
};

TEST_F(DomTest, SkeletonExists) {
  ASSERT_NE(Doc.documentElement(), nullptr);
  ASSERT_NE(Doc.head(), nullptr);
  ASSERT_NE(Doc.body(), nullptr);
  EXPECT_TRUE(Doc.body()->inDocument());
  EXPECT_EQ(Doc.body()->parent(), Doc.documentElement());
  EXPECT_EQ(Doc.documentElement()->tagName(), "html");
}

TEST_F(DomTest, CreateElementDetached) {
  Element *E = Doc.createElement("DIV");
  EXPECT_EQ(E->tagName(), "div"); // Lowercased.
  EXPECT_FALSE(E->inDocument());
  EXPECT_EQ(E->parent(), nullptr);
}

TEST_F(DomTest, NodeIdsUnique) {
  Element *A = Doc.createElement("a");
  Element *B = Doc.createElement("b");
  EXPECT_NE(A->id(), B->id());
}

TEST_F(DomTest, AppendChildSetsInDocument) {
  Element *E = Doc.createElement("div");
  MutationResult R = Doc.appendChild(Doc.body(), E);
  EXPECT_TRUE(R.Ok);
  ASSERT_EQ(R.AffectedElements.size(), 1u);
  EXPECT_EQ(R.AffectedElements[0], E);
  EXPECT_TRUE(E->inDocument());
  EXPECT_EQ(E->parent(), Doc.body());
}

TEST_F(DomTest, AppendSubtreeAffectsDescendants) {
  Element *Parent = Doc.createElement("div");
  Element *Child = Doc.createElement("span");
  Doc.appendChild(Parent, Child);
  EXPECT_FALSE(Child->inDocument());
  MutationResult R = Doc.appendChild(Doc.body(), Parent);
  EXPECT_EQ(R.AffectedElements.size(), 2u);
  EXPECT_TRUE(Child->inDocument());
}

TEST_F(DomTest, RemoveChildClearsInDocument) {
  Element *E = Doc.createElement("div");
  Element *Kid = Doc.createElement("em");
  Doc.appendChild(E, Kid);
  Doc.appendChild(Doc.body(), E);
  MutationResult R = Doc.removeChild(Doc.body(), E);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.AffectedElements.size(), 2u);
  EXPECT_FALSE(E->inDocument());
  EXPECT_FALSE(Kid->inDocument());
  EXPECT_EQ(E->parent(), nullptr);
}

TEST_F(DomTest, RemoveNonChildFails) {
  Element *E = Doc.createElement("div");
  MutationResult R = Doc.removeChild(Doc.body(), E);
  EXPECT_FALSE(R.Ok);
}

TEST_F(DomTest, InsertBeforePositions) {
  Element *A = Doc.createElement("a");
  Element *B = Doc.createElement("b");
  Element *C = Doc.createElement("c");
  Doc.appendChild(Doc.body(), A);
  Doc.appendChild(Doc.body(), C);
  Doc.insertBefore(Doc.body(), B, C);
  ASSERT_EQ(Doc.body()->children().size(), 3u);
  EXPECT_EQ(Doc.body()->children()[0], A);
  EXPECT_EQ(Doc.body()->children()[1], B);
  EXPECT_EQ(Doc.body()->children()[2], C);
}

TEST_F(DomTest, InsertBeforeBadRefFails) {
  Element *A = Doc.createElement("a");
  Element *Ref = Doc.createElement("r");
  MutationResult R = Doc.insertBefore(Doc.body(), A, Ref);
  EXPECT_FALSE(R.Ok);
}

TEST_F(DomTest, MoveReparents) {
  Element *A = Doc.createElement("a");
  Element *B = Doc.createElement("b");
  Doc.appendChild(Doc.body(), A);
  Doc.appendChild(Doc.body(), B);
  // Move B under A.
  MutationResult R = Doc.appendChild(A, B);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(B->parent(), A);
  EXPECT_EQ(Doc.body()->children().size(), 1u);
  // Still in document: the move is reported as affecting B itself.
  EXPECT_TRUE(B->inDocument());
  ASSERT_EQ(R.AffectedElements.size(), 1u);
  EXPECT_EQ(R.AffectedElements[0], B);
}

TEST_F(DomTest, CannotInsertUnderSelf) {
  Element *A = Doc.createElement("a");
  Doc.appendChild(Doc.body(), A);
  MutationResult R = Doc.appendChild(A, A);
  EXPECT_FALSE(R.Ok);
  Element *B = Doc.createElement("b");
  Doc.appendChild(A, B);
  EXPECT_FALSE(Doc.appendChild(B, A).Ok); // Ancestor under descendant.
}

TEST_F(DomTest, GetElementById) {
  Element *E = Doc.createElement("div");
  E->setAttribute("id", "target");
  EXPECT_EQ(Doc.getElementById("target"), nullptr); // Not inserted yet.
  Doc.appendChild(Doc.body(), E);
  EXPECT_EQ(Doc.getElementById("target"), E);
  Doc.removeChild(Doc.body(), E);
  EXPECT_EQ(Doc.getElementById("target"), nullptr);
}

TEST_F(DomTest, GetElementByIdFirstInTreeOrder) {
  Element *A = Doc.createElement("div");
  A->setAttribute("id", "dup");
  Element *B = Doc.createElement("div");
  B->setAttribute("id", "dup");
  Doc.appendChild(Doc.body(), B);
  Doc.insertBefore(Doc.body(), A, B);
  EXPECT_EQ(Doc.getElementById("dup"), A);
}

TEST_F(DomTest, GetElementsByTagName) {
  Doc.appendChild(Doc.body(), Doc.createElement("p"));
  Doc.appendChild(Doc.body(), Doc.createElement("div"));
  Doc.appendChild(Doc.body(), Doc.createElement("p"));
  EXPECT_EQ(Doc.getElementsByTagName("p").size(), 2u);
  EXPECT_EQ(Doc.getElementsByTagName("P").size(), 2u);
  // "*" matches all elements incl. html/head/body skeleton.
  EXPECT_EQ(Doc.getElementsByTagName("*").size(), 6u);
}

TEST_F(DomTest, GetElementsByName) {
  Element *E = Doc.createElement("input");
  E->setAttribute("name", "q");
  Doc.appendChild(Doc.body(), E);
  ASSERT_EQ(Doc.getElementsByName("q").size(), 1u);
  EXPECT_EQ(Doc.getElementsByName("q")[0], E);
}

TEST_F(DomTest, Attributes) {
  Element *E = Doc.createElement("img");
  EXPECT_FALSE(E->hasAttribute("src"));
  E->setAttribute("SRC", "a.png");
  EXPECT_TRUE(E->hasAttribute("src"));
  EXPECT_EQ(E->getAttribute("Src"), "a.png");
  E->setAttribute("src", "b.png");
  EXPECT_EQ(E->getAttribute("src"), "b.png");
  EXPECT_EQ(E->attributes().size(), 1u);
  E->removeAttribute("src");
  EXPECT_FALSE(E->hasAttribute("src"));
}

TEST_F(DomTest, FormValueState) {
  Element *Input = Doc.createElement("input");
  EXPECT_EQ(Input->formValue(), "");
  Input->setFormValue("City of Departure");
  EXPECT_EQ(Input->formValue(), "City of Departure");
  EXPECT_FALSE(Input->isChecked());
  Input->setChecked(true);
  EXPECT_TRUE(Input->isChecked());
}

TEST_F(DomTest, VoidTags) {
  EXPECT_TRUE(Doc.createElement("img")->isVoidTag());
  EXPECT_TRUE(Doc.createElement("input")->isVoidTag());
  EXPECT_TRUE(Doc.createElement("br")->isVoidTag());
  EXPECT_FALSE(Doc.createElement("div")->isVoidTag());
  EXPECT_FALSE(Doc.createElement("script")->isVoidTag());
}

TEST_F(DomTest, TextNodes) {
  Text *T = Doc.createTextNode("hello");
  EXPECT_EQ(T->data(), "hello");
  Doc.appendChild(Doc.body(), T);
  EXPECT_TRUE(T->inDocument());
  // Text nodes are not elements.
  EXPECT_EQ(Doc.getElementsByTagName("*").size(), 3u);
}

TEST_F(DomTest, IndexOf) {
  Element *A = Doc.createElement("a");
  Element *B = Doc.createElement("b");
  Doc.appendChild(Doc.body(), A);
  Doc.appendChild(Doc.body(), B);
  EXPECT_EQ(Doc.body()->indexOf(A), 0);
  EXPECT_EQ(Doc.body()->indexOf(B), 1);
  EXPECT_EQ(A->indexOf(B), -1);
}

TEST_F(DomTest, IsaCastHelpers) {
  Element *E = Doc.createElement("div");
  Node *N = E;
  EXPECT_TRUE(isa<Element>(N));
  EXPECT_FALSE(isa<Text>(N));
  EXPECT_EQ(cast<Element>(N), E);
  EXPECT_EQ(dyn_cast<Text>(N), nullptr);
  EXPECT_EQ(dyn_cast<Element>(N), E);
}

} // namespace

//===- tests/instr_test.cpp - instrumentation plumbing tests -------------------===//

#include "instr/Instrumentation.h"
#include "instr/TraceLog.h"

#include <gtest/gtest.h>

using namespace wr;

namespace {

/// Counts every callback.
class CountingSink final : public InstrumentationSink {
public:
  int Created = 0, Begun = 0, Ended = 0, Edges = 0, Accesses = 0,
      Dispatches = 0, Crashes = 0;

  void onOperationCreated(OpId, const Operation &) override { ++Created; }
  void onOperationBegin(OpId) override { ++Begun; }
  void onOperationEnd(OpId, bool Crashed) override {
    ++Ended;
    if (Crashed)
      ++Crashes;
  }
  void onHbEdge(OpId, OpId, HbRule) override { ++Edges; }
  void onMemoryAccess(const Access &) override { ++Accesses; }
  void onEventDispatch(NodeId, ContainerId, const std::string &, int32_t,
                       OpId, OpId) override {
    ++Dispatches;
  }
};

Access someAccess(LocationInterner &Interner) {
  Access A;
  A.Kind = AccessKind::Write;
  A.Op = 1;
  A.Loc = Interner.intern(JSVarLoc{0, "x"});
  return A;
}

TEST(MultiSinkTest, FansOutInOrder) {
  MultiSink Multi;
  CountingSink A, B;
  Multi.addSink(&A);
  Multi.addSink(&B);
  Operation Meta;
  Multi.onOperationCreated(1, Meta);
  Multi.onOperationBegin(1);
  LocationInterner Interner;
  Multi.onMemoryAccess(someAccess(Interner));
  Multi.onHbEdge(1, 2, HbRule::RProgram);
  Multi.onEventDispatch(3, 0, "click", 0, 4, 5);
  Multi.onOperationEnd(1, true);
  for (CountingSink *S : {&A, &B}) {
    EXPECT_EQ(S->Created, 1);
    EXPECT_EQ(S->Begun, 1);
    EXPECT_EQ(S->Accesses, 1);
    EXPECT_EQ(S->Edges, 1);
    EXPECT_EQ(S->Dispatches, 1);
    EXPECT_EQ(S->Ended, 1);
    EXPECT_EQ(S->Crashes, 1);
  }
}

TEST(MultiSinkTest, ClearRemovesSinks) {
  MultiSink Multi;
  CountingSink A;
  Multi.addSink(&A);
  Multi.clear();
  Multi.onOperationBegin(1);
  EXPECT_EQ(A.Begun, 0);
}

TEST(TraceLogTest, RecordsEverything) {
  TraceLog Trace;
  Operation Meta;
  Meta.Kind = OperationKind::ExecuteScript;
  Meta.Label = "exe <script>";
  Trace.onOperationCreated(1, Meta);
  Trace.onOperationBegin(1);
  Trace.onMemoryAccess(someAccess(Trace.interner()));
  Trace.onHbEdge(1, 2, HbRule::R16_SetTimeout);
  Trace.onEventDispatch(7, 0, "load", 0, 3, 4);
  Trace.onOperationEnd(1, false);
  EXPECT_EQ(Trace.events().size(), 6u);
  EXPECT_EQ(Trace.count(TraceLog::EventKind::OpCreated), 1u);
  EXPECT_EQ(Trace.count(TraceLog::EventKind::MemAccess), 1u);
  EXPECT_EQ(Trace.count(TraceLog::EventKind::HbEdge), 1u);
  EXPECT_EQ(Trace.count(TraceLog::EventKind::Dispatch), 1u);
}

TEST(TraceLogTest, ToStringIsReadable) {
  TraceLog Trace;
  Operation Meta;
  Meta.Kind = OperationKind::TimeoutCallback;
  Meta.Label = "cb(timer 1)";
  Trace.onOperationCreated(9, Meta);
  Trace.onHbEdge(3, 9, HbRule::R16_SetTimeout);
  Trace.onMemoryAccess(someAccess(Trace.interner()));
  Trace.onOperationEnd(9, true);
  std::string Text = Trace.toString();
  EXPECT_NE(Text.find("op 9 created: cb cb(timer 1)"), std::string::npos);
  EXPECT_NE(Text.find("hb 3 -> 9"), std::string::npos);
  EXPECT_NE(Text.find("rule 16"), std::string::npos);
  EXPECT_NE(Text.find("write var global.x"), std::string::npos);
  EXPECT_NE(Text.find("(crashed)"), std::string::npos);
}

TEST(OperationTest, KindNames) {
  EXPECT_STREQ(toString(OperationKind::ParseElement), "parse");
  EXPECT_STREQ(toString(OperationKind::ExecuteScript), "exe");
  EXPECT_STREQ(toString(OperationKind::TimeoutCallback), "cb");
  EXPECT_STREQ(toString(OperationKind::IntervalCallback), "cbi");
  EXPECT_STREQ(toString(OperationKind::EventHandler), "handler");
  EXPECT_STREQ(toString(OperationKind::ScriptSlice), "slice");
}

TEST(HbRuleTest, RuleNamesMentionPaperNumbers) {
  EXPECT_NE(std::string(toString(HbRule::R1a_ParseOrder)).find("rule 1a"),
            std::string::npos);
  EXPECT_NE(std::string(toString(HbRule::R10_AjaxSend)).find("rule 10"),
            std::string::npos);
  EXPECT_NE(std::string(toString(HbRule::R17_SetInterval)).find("rule 17"),
            std::string::npos);
  EXPECT_NE(
      std::string(toString(HbRule::RA_InlineSplit)).find("appendix"),
      std::string::npos);
}

} // namespace

//===- tests/analysis_test.cpp - Static race analyzer unit tests ---------------===//
//
// Covers the src/analysis subsystem bottom-up: the shared AST walker, the
// effect-set pass, the static must-HB graph, whole-page prediction
// (including ordered variants of the figure pages where the race is
// fixed), and the static-vs-dynamic cross-check on the Fig. 1-5 pages,
// where recall must be 1.0 and the deliberate false positive must be
// dynamically refuted.
//
//===----------------------------------------------------------------------===//

#include "analysis/CrossCheck.h"
#include "js/AstVisitor.h"
#include "js/Parser.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::analysis;

namespace {

//===----------------------------------------------------------------------===//
// AstVisitor
//===----------------------------------------------------------------------===//

class CountingVisitor : public js::ConstAstVisitor {
public:
  int Idents = 0;
  int Stmts = 0;
  int Entered = 0;
  int Left = 0;
  bool SkipIfChildren = false;

protected:
  bool beforeStmt(const js::Stmt &S) override {
    ++Stmts;
    if (SkipIfChildren && js::dyn_cast<js::If>(&S))
      return false;
    return true;
  }
  bool beforeExpr(const js::Expr &E) override {
    if (js::dyn_cast<js::Ident>(&E))
      ++Idents;
    return true;
  }
  bool enterFunction(const js::FunctionLiteral &Fn) override {
    (void)Fn;
    ++Entered;
    return true;
  }
  void leaveFunction(const js::FunctionLiteral &Fn) override {
    (void)Fn;
    ++Left;
  }
};

js::ParseResult parseJs(const char *Src) {
  js::ParseResult R = js::Parser::parseProgram(Src);
  EXPECT_TRUE(R.ok()) << "parse failed: " << Src;
  return R;
}

TEST(AstVisitorTest, VisitsEveryIdentInSourceOrder) {
  js::ParseResult R = parseJs("a = b + c;");
  CountingVisitor V;
  V.walk(*R.Ast);
  EXPECT_EQ(V.Idents, 3);
  EXPECT_EQ(V.Stmts, 1);
}

TEST(AstVisitorTest, FalseFromBeforeStmtSkipsChildren) {
  js::ParseResult R = parseJs("if (x) { y = 1; } z = 2;");
  CountingVisitor V;
  V.SkipIfChildren = true;
  V.walk(*R.Ast);
  // x and y live inside the skipped If; only z remains visible.
  EXPECT_EQ(V.Idents, 1);
}

TEST(AstVisitorTest, EnterLeaveFunctionBalanced) {
  js::ParseResult R =
      parseJs("function outer() { var f = function () { inner = 1; }; }");
  CountingVisitor V;
  V.walk(*R.Ast);
  EXPECT_EQ(V.Entered, 2);
  EXPECT_EQ(V.Left, 2);
  EXPECT_EQ(V.Entered, V.Left);
}

TEST(AstVisitorTest, NullSubtreesAreNoOps) {
  CountingVisitor V;
  V.walkStmt(nullptr);
  V.walkExpr(nullptr);
  EXPECT_EQ(V.Stmts, 0);
  EXPECT_EQ(V.Idents, 0);
}

//===----------------------------------------------------------------------===//
// Effect sets
//===----------------------------------------------------------------------===//

struct AnalyzedBody {
  js::ParseResult Parse;
  FunctionTable Fns;
  EffectSet Effects;
};

AnalyzedBody effectsOf(const char *Src) {
  AnalyzedBody A;
  A.Parse = js::Parser::parseProgram(Src);
  EXPECT_TRUE(A.Parse.ok()) << "parse failed: " << Src;
  if (A.Parse.Ast) {
    collectDeclaredFunctions(*A.Parse.Ast, A.Fns);
    A.Effects = computeEffects(*A.Parse.Ast, A.Fns);
  }
  return A;
}

TEST(EffectSetTest, GlobalReadsAndWrites) {
  AnalyzedBody A = effectsOf("x = y + 1;");
  EXPECT_TRUE(A.Effects.has(AccessKind::Write, StaticLocKind::Var, "x"));
  EXPECT_TRUE(A.Effects.has(AccessKind::Read, StaticLocKind::Var, "y"));
  EXPECT_FALSE(A.Effects.has(AccessKind::Read, StaticLocKind::Var, "x"));
}

TEST(EffectSetTest, LocalsAndBuiltinsInvisible) {
  AnalyzedBody A =
      effectsOf("function f() { var l = 1; l = l + 2; alert(l); } f();");
  EXPECT_FALSE(A.Effects.has(AccessKind::Write, StaticLocKind::Var, "l"));
  EXPECT_FALSE(A.Effects.has(AccessKind::Read, StaticLocKind::Var, "l"));
  EXPECT_FALSE(A.Effects.has(AccessKind::Read, StaticLocKind::Var, "alert"));
  EXPECT_FALSE(
      A.Effects.has(AccessKind::Read, StaticLocKind::Var, "document"));
}

TEST(EffectSetTest, FunctionDeclIsGlobalWriteWithDeclOrigin) {
  AnalyzedBody A = effectsOf("function g() { shared = 1; } g();");
  bool SawDeclWrite = false;
  for (const Effect &E : A.Effects.Effects)
    if (E.Kind == AccessKind::Write && E.Loc.Name == "g" &&
        E.Origin == AccessOrigin::FunctionDecl)
      SawDeclWrite = true;
  EXPECT_TRUE(SawDeclWrite);
  // The call inlines the callee's effects. Its read of `g` is dropped
  // by the flow-sensitive exposure rule: the declaration write precedes
  // it on every path of the same atomic operation, so nothing can
  // interpose - the remaining write alone carries any race.
  EXPECT_FALSE(A.Effects.has(AccessKind::Read, StaticLocKind::Var, "g"));
  EXPECT_TRUE(
      A.Effects.has(AccessKind::Write, StaticLocKind::Var, "shared"));
}

TEST(EffectSetTest, HoistedFunctionVisibleBeforeItsDeclaration) {
  AnalyzedBody A = effectsOf("h(); function h() { q = 2; }");
  EXPECT_TRUE(A.Effects.has(AccessKind::Write, StaticLocKind::Var, "q"));
}

TEST(EffectSetTest, RecursiveFlatteningTerminates) {
  AnalyzedBody A = effectsOf("function r() { r(); touched = 1; } r();");
  EXPECT_TRUE(
      A.Effects.has(AccessKind::Write, StaticLocKind::Var, "touched"));
}

TEST(EffectSetTest, GetElementByIdAliasYieldsFormFieldEffects) {
  // The Fig. 2 hint script shape: lookup, guard read, value write.
  AnalyzedBody A = effectsOf("var f = document.getElementById('depart'); "
                             "if (f.value == '') { f.value = 'City'; }");
  EXPECT_TRUE(A.Effects.has(AccessKind::Read, StaticLocKind::Elem, "depart"));
  EXPECT_TRUE(
      A.Effects.has(AccessKind::Read, StaticLocKind::FormField, "depart"));
  EXPECT_TRUE(
      A.Effects.has(AccessKind::Write, StaticLocKind::FormField, "depart"));
}

TEST(EffectSetTest, TimerCallbackBodyIsSeparate) {
  AnalyzedBody A = effectsOf("setTimeout(function () { t = 1; }, 10);");
  ASSERT_EQ(A.Effects.Callbacks.size(), 1u);
  const CallbackReg &Reg = A.Effects.Callbacks[0];
  EXPECT_EQ(Reg.Kind, CallbackKind::Timeout);
  EXPECT_TRUE(Reg.Body.has(AccessKind::Write, StaticLocKind::Var, "t"));
  // The write happens in the callback's operation, not the registrar's.
  EXPECT_FALSE(A.Effects.has(AccessKind::Write, StaticLocKind::Var, "t"));
}

TEST(EffectSetTest, NamedTimerCallbackReadsTheFunctionAtFireTime) {
  // Fig. 4: the callback reads doNextStep when the timer fires, so the
  // read must land in the callback body to race with a later decl.
  AnalyzedBody A = effectsOf("setTimeout(doNextStep, 20);");
  ASSERT_EQ(A.Effects.Callbacks.size(), 1u);
  EXPECT_TRUE(A.Effects.Callbacks[0].Body.has(
      AccessKind::Read, StaticLocKind::Var, "doNextStep"));
}

TEST(EffectSetTest, IntervalRegistrationKind) {
  AnalyzedBody A = effectsOf("setInterval(function () { k = k + 1; }, 5);");
  ASSERT_EQ(A.Effects.Callbacks.size(), 1u);
  EXPECT_EQ(A.Effects.Callbacks[0].Kind, CallbackKind::Interval);
}

TEST(EffectSetTest, XhrSendRegistersDispatchWithHandlerBody) {
  AnalyzedBody A =
      effectsOf("var x = new XMLHttpRequest(); "
                "x.onreadystatechange = function () { done = 1; }; "
                "x.send();");
  ASSERT_EQ(A.Effects.Callbacks.size(), 1u);
  const CallbackReg &Reg = A.Effects.Callbacks[0];
  EXPECT_EQ(Reg.Kind, CallbackKind::XhrDispatch);
  EXPECT_TRUE(Reg.Body.has(AccessKind::Write, StaticLocKind::Var, "done"));
}

TEST(EffectSetTest, HandlerInstallOnResolvedDomId) {
  AnalyzedBody A =
      effectsOf("document.getElementById('btn').onclick = "
                "function () { n = 1; };");
  EXPECT_TRUE(A.Effects.has(AccessKind::Write, StaticLocKind::Handler,
                            "btn", "click"));
  ASSERT_EQ(A.Effects.Callbacks.size(), 1u);
  const CallbackReg &Reg = A.Effects.Callbacks[0];
  EXPECT_EQ(Reg.Kind, CallbackKind::EventHandler);
  EXPECT_EQ(Reg.TargetId, "btn");
  EXPECT_EQ(Reg.EventType, "click");
  EXPECT_TRUE(Reg.Body.has(AccessKind::Write, StaticLocKind::Var, "n"));
}

TEST(EffectSetTest, UnresolvableBaseInstallsWildcardHandler) {
  // The Gomez pattern: installing onload through a variable the analysis
  // cannot resolve must still record a (wildcard) install, not nothing.
  AnalyzedBody A = effectsOf("im.onload = function () { loaded = 1; };");
  EXPECT_TRUE(
      A.Effects.has(AccessKind::Write, StaticLocKind::Handler, "", "load"));
  ASSERT_EQ(A.Effects.Callbacks.size(), 1u);
  EXPECT_EQ(A.Effects.Callbacks[0].Kind, CallbackKind::EventHandler);
  EXPECT_EQ(A.Effects.Callbacks[0].TargetId, "");
}

//===----------------------------------------------------------------------===//
// Location aliasing and race classification
//===----------------------------------------------------------------------===//

TEST(StaticLocTest, AliasingIsExactForNonHandlers) {
  StaticLoc X{StaticLocKind::Var, "x", ""};
  StaticLoc X2{StaticLocKind::Var, "x", ""};
  StaticLoc Y{StaticLocKind::Var, "y", ""};
  StaticLoc ElemX{StaticLocKind::Elem, "x", ""};
  EXPECT_TRUE(locationsMayAlias(X, X2));
  EXPECT_FALSE(locationsMayAlias(X, Y));
  EXPECT_FALSE(locationsMayAlias(X, ElemX));
}

TEST(StaticLocTest, HandlerWildcardTargetMatchesSameEventType) {
  StaticLoc Wild{StaticLocKind::Handler, "", "load"};
  StaticLoc OnI{StaticLocKind::Handler, "i", "load"};
  StaticLoc OnJ{StaticLocKind::Handler, "j", "load"};
  StaticLoc Click{StaticLocKind::Handler, "i", "click"};
  EXPECT_TRUE(locationsMayAlias(Wild, OnI));
  EXPECT_TRUE(locationsMayAlias(OnI, Wild));
  EXPECT_FALSE(locationsMayAlias(OnI, OnJ));
  EXPECT_FALSE(locationsMayAlias(OnI, Click));
  EXPECT_FALSE(locationsMayAlias(Wild, Click));
}

TEST(StaticLocTest, ClassificationMirrorsDynamicDetector) {
  auto Eff = [](AccessKind K, AccessOrigin O, StaticLocKind LK,
                const char *Name, const char *Type = "") {
    return Effect{K, O, {LK, Name, Type}, {}, false};
  };
  Effect HandlerW = Eff(AccessKind::Write, AccessOrigin::HandlerInstall,
                        StaticLocKind::Handler, "i", "load");
  Effect HandlerR = Eff(AccessKind::Read, AccessOrigin::HandlerFire,
                        StaticLocKind::Handler, "i", "load");
  EXPECT_EQ(classifyStaticRace(HandlerW, HandlerR),
            detect::RaceKind::EventDispatch);

  Effect ElemW = Eff(AccessKind::Write, AccessOrigin::ElemInsert,
                     StaticLocKind::Elem, "dw");
  Effect ElemR = Eff(AccessKind::Read, AccessOrigin::ElemLookup,
                     StaticLocKind::Elem, "dw");
  EXPECT_EQ(classifyStaticRace(ElemW, ElemR), detect::RaceKind::Html);

  Effect DeclW = Eff(AccessKind::Write, AccessOrigin::FunctionDecl,
                     StaticLocKind::Var, "f");
  Effect CallR = Eff(AccessKind::Read, AccessOrigin::FunctionCall,
                     StaticLocKind::Var, "f");
  EXPECT_EQ(classifyStaticRace(DeclW, CallR), detect::RaceKind::Function);
  EXPECT_EQ(classifyStaticRace(CallR, DeclW), detect::RaceKind::Function);

  Effect VarW =
      Eff(AccessKind::Write, AccessOrigin::Plain, StaticLocKind::Var, "x");
  Effect VarR =
      Eff(AccessKind::Read, AccessOrigin::Plain, StaticLocKind::Var, "x");
  EXPECT_EQ(classifyStaticRace(VarW, VarR), detect::RaceKind::Variable);
}

//===----------------------------------------------------------------------===//
// Static must-HB graph
//===----------------------------------------------------------------------===//

TEST(StaticHbTest, ReachabilityIsReflexiveAndTransitive) {
  StaticHbGraph G;
  uint32_t A = G.addSource(SourceKind::Parse, "a");
  uint32_t B = G.addSource(SourceKind::SyncScript, "b");
  uint32_t C = G.addSource(SourceKind::SyncScript, "c");
  G.addEdge(A, B);
  G.addEdge(B, C);
  EXPECT_TRUE(G.reaches(A, A));
  EXPECT_TRUE(G.reaches(A, C));
  EXPECT_FALSE(G.reaches(C, A));
  EXPECT_TRUE(G.ordered(A, C));
  EXPECT_TRUE(G.ordered(C, A));
}

TEST(StaticHbTest, DisconnectedSourcesAreUnordered) {
  StaticHbGraph G;
  uint32_t A = G.addSource(SourceKind::AsyncScript, "a");
  uint32_t B = G.addSource(SourceKind::AsyncScript, "b");
  EXPECT_FALSE(G.ordered(A, B));
}

TEST(StaticHbTest, InvalidAndDuplicateEdgesIgnored) {
  StaticHbGraph G;
  uint32_t A = G.addSource(SourceKind::Parse, "a");
  uint32_t B = G.addSource(SourceKind::Parse, "b");
  G.addEdge(StaticHbGraph::InvalidSource, A);
  G.addEdge(A, StaticHbGraph::InvalidSource);
  G.addEdge(A, A);
  EXPECT_EQ(G.numEdges(), 0u);
  G.addEdge(A, B);
  G.addEdge(A, B);
  EXPECT_EQ(G.numEdges(), 1u);
}

//===----------------------------------------------------------------------===//
// Whole-page prediction
//===----------------------------------------------------------------------===//

ResourceResolver tableResolver(
    std::vector<std::pair<std::string, std::string>> Table) {
  return [Table = std::move(Table)](
             const std::string &Url) -> std::optional<std::string> {
    for (const auto &[K, V] : Table)
      if (K == Url)
        return V;
    return std::nullopt;
  };
}

bool hasPrediction(const StaticAnalysis &A, detect::RaceKind Kind,
                   StaticLocKind LocKind, const std::string &Name,
                   const std::string &EventType = std::string()) {
  StaticLoc Want{LocKind, Name, EventType};
  for (const PredictedRace &P : A.Races)
    if (P.Kind == Kind && locationsMayAlias(P.Loc, Want))
      return true;
  return false;
}

TEST(StaticAnalyzerTest, SyncScriptsAreOrderedByParseOrder) {
  StaticAnalysis A = analyzePage(
      "<html><body><script>x = 1;</script>"
      "<script>y = x;</script></body></html>",
      tableResolver({}));
  EXPECT_TRUE(A.Races.empty());
}

TEST(StaticAnalyzerTest, AsyncScriptsStayUnordered) {
  StaticAnalysis A = analyzePage(
      "<html><body><script async src=\"a.js\"></script>"
      "<script async src=\"b.js\"></script></body></html>",
      tableResolver({{"a.js", "shared = 1;"}, {"b.js", "t = shared;"}}));
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_TRUE(hasPrediction(A, detect::RaceKind::Variable,
                            StaticLocKind::Var, "shared"));
}

TEST(StaticAnalyzerTest, DeferredScriptOrderedAfterWholeParse) {
  // The deferred script reads x after the later sync script wrote it:
  // rule 4/5 order defer bodies after parsing, so no race.
  StaticAnalysis A = analyzePage(
      "<html><body><script defer src=\"d.js\"></script>"
      "<script>x = 1;</script></body></html>",
      tableResolver({{"d.js", "y = x;"}}));
  EXPECT_TRUE(A.Races.empty());
}

TEST(StaticAnalyzerTest, UnresolvedResourceIsNoted) {
  StaticAnalysis A = analyzePage(
      "<html><body><script src=\"missing.js\"></script></body></html>",
      tableResolver({}));
  ASSERT_FALSE(A.Notes.empty());
  bool Mentioned = false;
  for (const std::string &N : A.Notes)
    if (N.find("missing.js") != std::string::npos)
      Mentioned = true;
  EXPECT_TRUE(Mentioned);
}

const PageSpec &figurePage(const std::vector<PageSpec> &Pages,
                           const std::string &Name) {
  for (const PageSpec &P : Pages)
    if (P.Name == Name)
      return P;
  ADD_FAILURE() << "no figure page named " << Name;
  return Pages.front();
}

StaticAnalysis analyzeFigure(const std::string &Name) {
  std::vector<PageSpec> Pages = figurePages();
  const PageSpec &Page = figurePage(Pages, Name);
  return analyzePage(Page.Html, Page.resolver());
}

TEST(StaticAnalyzerTest, Fig1SiblingFrameScriptsRaceOnX) {
  StaticAnalysis A = analyzeFigure("fig1");
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_TRUE(
      hasPrediction(A, detect::RaceKind::Variable, StaticLocKind::Var, "x"));
}

TEST(StaticAnalyzerTest, Fig2UserInputRacesWithHintScript) {
  StaticAnalysis A = analyzeFigure("fig2");
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_TRUE(hasPrediction(A, detect::RaceKind::Variable,
                            StaticLocKind::FormField, "depart"));
}

TEST(StaticAnalyzerTest, Fig3ClickRacesWithLateElementParseOnly) {
  StaticAnalysis A = analyzeFigure("fig3");
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_TRUE(
      hasPrediction(A, detect::RaceKind::Html, StaticLocKind::Elem, "dw"));
  // show() is declared by the inline script parsed before the link, so
  // the call through the click dispatch is ordered after the decl.
  EXPECT_FALSE(hasPrediction(A, detect::RaceKind::Function,
                             StaticLocKind::Var, "show"));
}

TEST(StaticAnalyzerTest, Fig4TimerCallbackRacesWithLateDecl) {
  StaticAnalysis A = analyzeFigure("fig4");
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_TRUE(hasPrediction(A, detect::RaceKind::Function,
                            StaticLocKind::Var, "doNextStep"));
}

TEST(StaticAnalyzerTest, Fig4FixedVariantDeclBeforeFrameHasNoRace) {
  // Moving the declaration before the <iframe> restores the order the
  // paper suggests: parse(decl) -> parse(iframe) -> frame load -> timer.
  StaticAnalysis A = analyzePage(
      "<html><body>"
      "<script>function doNextStep() { window.step = 2; }</script>"
      "<iframe id=\"i\" src=\"sub.html\"></iframe>"
      "</body></html>",
      tableResolver({{"sub.html",
                      "<html><body onload=\"setTimeout(doNextStep, 20)\">"
                      "</body></html>"}}));
  EXPECT_EQ(A.countByKind(detect::RaceKind::Function), 0u);
}

TEST(StaticAnalyzerTest, Fig5ScriptInstalledOnloadRacesWithDispatch) {
  StaticAnalysis A = analyzeFigure("fig5");
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_TRUE(hasPrediction(A, detect::RaceKind::EventDispatch,
                            StaticLocKind::Handler, "i", "load"));
}

TEST(StaticAnalyzerTest, Fig5InTagOnloadVariantHasNoRace) {
  // An in-tag handler is installed at parse(iframe), which rule 8 orders
  // before the frame's load dispatch: the Fig. 5 race disappears.
  StaticAnalysis A = analyzePage(
      "<html><body>"
      "<iframe id=\"i\" src=\"a.html\" "
      "onload=\"window.frameLoaded = true;\"></iframe>"
      "</body></html>",
      tableResolver({{"a.html", "<html><body></body></html>"}}));
  EXPECT_EQ(A.countByKind(detect::RaceKind::EventDispatch), 0u);
}

TEST(StaticAnalyzerTest, FalsePositivePageStillPredictsVariableRace) {
  PageSpec Page = falsePositivePage();
  StaticAnalysis A = analyzePage(Page.Html, Page.resolver());
  EXPECT_TRUE(hasPrediction(A, detect::RaceKind::Variable,
                            StaticLocKind::Var, "phantom"));
}

//===----------------------------------------------------------------------===//
// Cross-validation against the dynamic detector
//===----------------------------------------------------------------------===//

bool confirmedHas(const CrossCheckResult &R, detect::RaceKind Kind,
                  StaticLocKind LocKind, const std::string &Name,
                  const std::string &EventType = std::string()) {
  StaticLoc Want{LocKind, Name, EventType};
  for (const PredictedRace &P : R.Confirmed)
    if (P.Kind == Kind && locationsMayAlias(P.Loc, Want))
      return true;
  return false;
}

TEST(CrossCheckTest, FigurePagesHaveFullRecall) {
  for (const PageSpec &Page : figurePages()) {
    CrossCheckResult R = crossCheck(Page);
    EXPECT_GT(R.dynamicCount(), 0u) << Page.Name;
    EXPECT_EQ(R.missedCount(), 0u) << Page.Name << "\n" << formatReport(R);
    EXPECT_DOUBLE_EQ(R.recall(), 1.0) << Page.Name;
  }
}

TEST(CrossCheckTest, FigurePagesConfirmTheExpectedRaceShapes) {
  std::vector<PageSpec> Pages = figurePages();
  CrossCheckResult R1 = crossCheck(figurePage(Pages, "fig1"));
  EXPECT_TRUE(confirmedHas(R1, detect::RaceKind::Variable,
                           StaticLocKind::Var, "x"));
  CrossCheckResult R2 = crossCheck(figurePage(Pages, "fig2"));
  EXPECT_TRUE(confirmedHas(R2, detect::RaceKind::Variable,
                           StaticLocKind::FormField, "depart"));
  CrossCheckResult R3 = crossCheck(figurePage(Pages, "fig3"));
  EXPECT_TRUE(
      confirmedHas(R3, detect::RaceKind::Html, StaticLocKind::Elem, "dw"));
  CrossCheckResult R4 = crossCheck(figurePage(Pages, "fig4"));
  EXPECT_TRUE(confirmedHas(R4, detect::RaceKind::Function,
                           StaticLocKind::Var, "doNextStep"));
  CrossCheckResult R5 = crossCheck(figurePage(Pages, "fig5"));
  EXPECT_TRUE(confirmedHas(R5, detect::RaceKind::EventDispatch,
                           StaticLocKind::Handler, "i", "load"));
}

TEST(CrossCheckTest, FalsePositiveIsDynamicallyRefuted) {
  CrossCheckResult R = crossCheck(falsePositivePage());
  EXPECT_GE(R.predictedCount(), 1u);
  EXPECT_EQ(R.confirmedCount(), 0u);
  EXPECT_EQ(R.dynamicCount(), 0u);
  ASSERT_FALSE(R.Refuted.empty());
  EXPECT_EQ(R.Refuted[0].Kind, detect::RaceKind::Variable);
  EXPECT_EQ(R.Refuted[0].Loc.Name, "phantom");
  EXPECT_DOUBLE_EQ(R.precision(), 0.0);
  EXPECT_DOUBLE_EQ(R.recall(), 1.0);
}

//===----------------------------------------------------------------------===//
// Guard analysis (flow-sensitive effect sets)
//===----------------------------------------------------------------------===//

TEST(GuardAnalysisTest, BranchConditionsTagDominatedEffects) {
  AnalyzedBody A = effectsOf("if (ready) { x = 1; }");
  const Effect *W =
      A.Effects.find(AccessKind::Write, StaticLocKind::Var, "x");
  ASSERT_NE(W, nullptr);
  EXPECT_FALSE(W->Guards.empty());
  EXPECT_NE(W->Guards.toString().find("ready"), std::string::npos);
  // The condition read itself is flagged: it IS the defense.
  const Effect *R =
      A.Effects.find(AccessKind::Read, StaticLocKind::Var, "ready");
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(R->SyncRead);
}

TEST(GuardAnalysisTest, GuardsIntersectAcrossOccurrences) {
  // The same write occurs guarded and unguarded: only conditions
  // guarding every occurrence count, so the merged guard set is empty.
  AnalyzedBody A = effectsOf("if (a) { x = 1; } x = 2;");
  const Effect *W =
      A.Effects.find(AccessKind::Write, StaticLocKind::Var, "x");
  ASSERT_NE(W, nullptr);
  EXPECT_TRUE(W->Guards.empty());
}

TEST(GuardAnalysisTest, LiterallyFalseBranchesAreDead) {
  AnalyzedBody A = effectsOf(
      "if (false) { dead = 1; } "
      "if (1) { live = 1; } else { alsoDead = 1; }");
  EXPECT_FALSE(A.Effects.has(AccessKind::Write, StaticLocKind::Var, "dead"));
  EXPECT_FALSE(
      A.Effects.has(AccessKind::Write, StaticLocKind::Var, "alsoDead"));
  EXPECT_TRUE(A.Effects.has(AccessKind::Write, StaticLocKind::Var, "live"));
}

TEST(GuardAnalysisTest, TypeofGuardCoversTheGuardedUse) {
  AnalyzedBody A =
      effectsOf("if (typeof doWork != 'undefined') { doWork(); }");
  const Effect *R =
      A.Effects.find(AccessKind::Read, StaticLocKind::Var, "doWork");
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(R->SyncRead || !R->Guards.empty());
}

TEST(GuardAnalysisTest, ShortCircuitGuardsTheRightOperand) {
  AnalyzedBody A = effectsOf("t = loaded && payload;");
  const Effect *R =
      A.Effects.find(AccessKind::Read, StaticLocKind::Var, "payload");
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->Guards.empty());
  EXPECT_NE(R->Guards.toString().find("loaded"), std::string::npos);
}

TEST(GuardAnalysisTest, DefinitelyPrecedingWriteDropsTheRead) {
  // Scripts are atomic operations: a read every path writes first
  // cannot be interposed on, so only the write carries the race.
  AnalyzedBody A = effectsOf("x = 1; y = x;");
  EXPECT_FALSE(A.Effects.has(AccessKind::Read, StaticLocKind::Var, "x"));
  EXPECT_TRUE(A.Effects.has(AccessKind::Write, StaticLocKind::Var, "x"));
}

TEST(GuardAnalysisTest, ConditionallyPrecedingWriteKeepsTheRead) {
  AnalyzedBody A = effectsOf("if (a) { x = 1; } y = x;");
  EXPECT_TRUE(A.Effects.has(AccessKind::Read, StaticLocKind::Var, "x"));
}

TEST(GuardAnalysisTest, RegistrationGuardsReachTheCallback) {
  AnalyzedBody A = effectsOf(
      "if (flag) { setTimeout(function () { q = 1; }, 5); }");
  ASSERT_EQ(A.Effects.Callbacks.size(), 1u);
  EXPECT_FALSE(A.Effects.Callbacks[0].Guards.empty());
  EXPECT_NE(A.Effects.Callbacks[0].Guards.toString().find("flag"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Guard classification of predictions
//===----------------------------------------------------------------------===//

TEST(StaticAnalyzerTest, UnguardedAsyncScriptsClassifyUnguarded) {
  StaticAnalysis A = analyzePage(
      "<html><body><script async src=\"a.js\"></script>"
      "<script async src=\"b.js\"></script></body></html>",
      tableResolver({{"a.js", "shared = 1;"}, {"b.js", "t = shared;"}}));
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_EQ(A.Races[0].Class, GuardClass::Unguarded);
  EXPECT_FALSE(A.Races[0].GuardedA);
  EXPECT_FALSE(A.Races[0].GuardedB);
}

TEST(StaticAnalyzerTest, FalsePositivePageClassifiesGuardedOneSide) {
  PageSpec Page = falsePositivePage();
  StaticAnalysis A = analyzePage(Page.Html, Page.resolver());
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_EQ(A.Races[0].Class, GuardClass::GuardedOneSide);
  EXPECT_NE(toString(A.Races[0]).find("guarded-one-side"),
            std::string::npos);
}

TEST(StaticAnalyzerTest, DeadGuardTimersClassifyGuardedBothSides) {
  StaticAnalysis A = analyzePage(
      "<html><body><script>"
      "setTimeout(function () { if (window.mode) { fbq = 1; } }, 5);"
      "setTimeout(function () { if (window.mode) { seen = fbq; } }, 7);"
      "</script></body></html>",
      tableResolver({}));
  ASSERT_EQ(A.Races.size(), 1u);
  EXPECT_EQ(A.Races[0].Loc.Name, "fbq");
  EXPECT_EQ(A.Races[0].Class, GuardClass::GuardedBothSides);
  EXPECT_TRUE(A.Races[0].GuardedA);
  EXPECT_TRUE(A.Races[0].GuardedB);
  EXPECT_NE(toString(A.Races[0]).find("guarded-both-sides"),
            std::string::npos);
}

TEST(StaticAnalyzerTest, PredictionsAreDeterministicallySorted) {
  const char *Html = "<html><body><script async src=\"a.js\"></script>"
                     "<script async src=\"b.js\"></script></body></html>";
  auto Resolver = tableResolver(
      {{"a.js", "m = 1; n = 1; k = 1;"}, {"b.js", "t = m + n + k;"}});
  StaticAnalysis First = analyzePage(Html, Resolver);
  StaticAnalysis Second = analyzePage(Html, Resolver);
  ASSERT_EQ(First.Races.size(), 3u);
  // Byte-stable across runs...
  ASSERT_EQ(First.Races.size(), Second.Races.size());
  for (size_t I = 0; I < First.Races.size(); ++I)
    EXPECT_EQ(toString(First.Races[I]), toString(Second.Races[I]));
  // ... because the output is canonically ordered.
  auto Key = [](const PredictedRace &P) {
    return std::tie(P.Kind, P.Loc.Kind, P.Loc.Name, P.Loc.EventType,
                    P.SourceA, P.SourceB);
  };
  for (size_t I = 1; I < First.Races.size(); ++I)
    EXPECT_TRUE(Key(First.Races[I - 1]) < Key(First.Races[I]) ||
                !(Key(First.Races[I]) < Key(First.Races[I - 1])));
}

} // namespace

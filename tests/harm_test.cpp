//===- tests/harm_test.cpp - replay-based harmfulness classification ----------===//
//
// The analyzer must reach the same verdicts the paper's authors reached
// by manual inspection: unguarded form overwrites, missing-node
// dereferences, undefined-function calls, and lost single-dispatch
// handlers are harmful; their guarded/optional twins are benign.
//
//===----------------------------------------------------------------------===//

#include "sites/Corpus.h"
#include "webracer/Harm.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::webracer;
using namespace wr::detect;

namespace {

struct PatternRun {
  sites::GeneratedSite Site;
  std::unique_ptr<Session> S;
  SessionResult Result;
};

/// Runs a single-pattern site and keeps the session alive (the analyzer
/// needs its HB graph for operation metadata).
PatternRun runPattern(sites::PatternKind Kind, int Count = 1) {
  PatternRun Run;
  sites::SiteSpec Spec;
  Spec.Name = "HarmSite";
  Spec.Patterns.push_back({Kind, Count});
  Run.Site = sites::buildSite(Spec);
  SessionOptions Opts;
  Run.S = std::make_unique<Session>(Opts);
  Run.S->network().addResource(Run.Site.IndexUrl, Run.Site.Html, 10);
  for (const sites::SiteResource &R : Run.Site.Resources)
    Run.S->network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                           R.MaxLatencyUs);
  Run.Result = Run.S->run(Run.Site.IndexUrl);
  return Run;
}

HarmAnalyzer analyzerFor(const PatternRun &Run) {
  const sites::GeneratedSite &Site = Run.Site;
  return HarmAnalyzer(
      [Site](rt::NetworkSimulator &Net) {
        Net.addResource(Site.IndexUrl, Site.Html, 10);
        for (const sites::SiteResource &R : Site.Resources)
          Net.addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                    R.MaxLatencyUs);
      },
      Site.IndexUrl);
}

/// Classifies every filtered race of one kind; returns the verdicts.
std::vector<HarmVerdict> classify(PatternRun &Run, RaceKind Kind) {
  HarmAnalyzer A = analyzerFor(Run);
  std::vector<HarmVerdict> Verdicts;
  for (const Race &R : Run.Result.FilteredRaces)
    if (R.Kind == Kind)
      Verdicts.push_back(A.analyze(R, Run.S->browser().hb()).Verdict);
  return Verdicts;
}

TEST(HarmTest, UnguardedFormOverwriteIsHarmful) {
  PatternRun Run = runPattern(sites::PatternKind::FormValueHarmful);
  auto Verdicts = classify(Run, RaceKind::Variable);
  ASSERT_EQ(Verdicts.size(), 1u);
  EXPECT_EQ(Verdicts[0], HarmVerdict::Harmful);
}

TEST(HarmTest, ReadOnlyFormRaceIsBenign) {
  PatternRun Run = runPattern(sites::PatternKind::FormValueReadBenign);
  auto Verdicts = classify(Run, RaceKind::Variable);
  ASSERT_EQ(Verdicts.size(), 1u);
  EXPECT_EQ(Verdicts[0], HarmVerdict::Benign);
}

TEST(HarmTest, MissingNodeDereferenceIsHarmful) {
  PatternRun Run = runPattern(sites::PatternKind::HtmlLookupHarmful);
  auto Verdicts = classify(Run, RaceKind::Html);
  ASSERT_EQ(Verdicts.size(), 1u);
  EXPECT_EQ(Verdicts[0], HarmVerdict::Harmful);
}

TEST(HarmTest, GuardedPollingIsBenign) {
  PatternRun Run = runPattern(sites::PatternKind::HtmlPollingBenign, 3);
  auto Verdicts = classify(Run, RaceKind::Html);
  ASSERT_EQ(Verdicts.size(), 3u);
  for (HarmVerdict V : Verdicts)
    EXPECT_EQ(V, HarmVerdict::Benign);
}

TEST(HarmTest, UndefinedFunctionCallIsHarmful) {
  PatternRun Run = runPattern(sites::PatternKind::FunctionCallHarmful);
  auto Verdicts = classify(Run, RaceKind::Function);
  ASSERT_EQ(Verdicts.size(), 1u);
  EXPECT_EQ(Verdicts[0], HarmVerdict::Harmful);
}

TEST(HarmTest, TypeofGuardedFunctionCallIsBenign) {
  PatternRun Run = runPattern(sites::PatternKind::FunctionCallGuarded);
  auto Verdicts = classify(Run, RaceKind::Function);
  ASSERT_EQ(Verdicts.size(), 1u);
  EXPECT_EQ(Verdicts[0], HarmVerdict::Benign);
}

TEST(HarmTest, GomezLostHandlerIsHarmful) {
  PatternRun Run = runPattern(sites::PatternKind::GomezMonitorHarmful, 2);
  auto Verdicts = classify(Run, RaceKind::EventDispatch);
  ASSERT_EQ(Verdicts.size(), 2u);
  for (HarmVerdict V : Verdicts)
    EXPECT_EQ(V, HarmVerdict::Harmful);
}

TEST(HarmTest, NonFormVariableRaceIsInconclusive) {
  // Plain variable races (two async scripts sharing a config global)
  // have no mechanical loss criterion: the analyzer must say so rather
  // than guess.
  PatternRun Run = runPattern(sites::PatternKind::VariableNoiseBenign, 1);
  HarmAnalyzer A = analyzerFor(Run);
  ASSERT_FALSE(Run.Result.RawRaces.empty());
  bool SawInconclusive = false;
  for (const Race &R : Run.Result.RawRaces) {
    if (R.Kind != RaceKind::Variable)
      continue;
    HarmEvidence E = A.analyze(R, Run.S->browser().hb());
    if (E.Verdict == HarmVerdict::Inconclusive)
      SawInconclusive = true;
  }
  EXPECT_TRUE(SawInconclusive);
}

TEST(HarmTest, ReplayCountsAreReported) {
  PatternRun Run = runPattern(sites::PatternKind::FormValueHarmful);
  HarmAnalyzer A = analyzerFor(Run);
  EXPECT_EQ(A.replaysRun(), 0u);
  for (const Race &R : Run.Result.FilteredRaces)
    A.analyze(R, Run.S->browser().hb());
  EXPECT_GE(A.replaysRun(), 1u);
}

TEST(HarmTest, EvidenceReasonsAreInformative) {
  PatternRun Run = runPattern(sites::PatternKind::FormValueHarmful);
  HarmAnalyzer A = analyzerFor(Run);
  for (const Race &R : Run.Result.FilteredRaces) {
    if (R.Kind != RaceKind::Variable)
      continue;
    HarmEvidence E = A.analyze(R, Run.S->browser().hb());
    EXPECT_FALSE(E.Reason.empty());
    EXPECT_NE(E.Reason.find("overwritten"), std::string::npos);
  }
}

TEST(HarmTest, VerdictNamesRender) {
  EXPECT_STREQ(toString(HarmVerdict::Harmful), "harmful");
  EXPECT_STREQ(toString(HarmVerdict::Benign), "benign");
  EXPECT_STREQ(toString(HarmVerdict::Inconclusive), "inconclusive");
}

} // namespace

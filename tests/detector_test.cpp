//===- tests/detector_test.cpp - race detector algorithm unit tests -----------===//
//
// Drives the Sec. 5.1 algorithm directly with hand-built happens-before
// graphs and access sequences, pinning its exact semantics: slot updates,
// CHC conditions, the ⊥ initialization, one-report-per-location, race
// classification, and the documented single-slot miss.
//
//===----------------------------------------------------------------------===//

#include "detect/RaceDetector.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::detect;

namespace {

class DetectorTest : public ::testing::Test {
protected:
  OpId op() { return Hb.addOperation(Operation()); }

  void edge(OpId A, OpId B) { Hb.addEdge(A, B, HbRule::RProgram); }

  Access access(AccessKind Kind, OpId Op, const char *Name,
                AccessOrigin Origin = AccessOrigin::Plain) {
    Access A;
    A.Kind = Kind;
    A.Op = Op;
    A.Origin = Origin;
    A.Loc = Interner.internVar(0, Name);
    return A;
  }

  Access read(OpId Op, const char *Name,
              AccessOrigin Origin = AccessOrigin::Plain) {
    return access(AccessKind::Read, Op, Name, Origin);
  }
  Access write(OpId Op, const char *Name,
               AccessOrigin Origin = AccessOrigin::Plain) {
    return access(AccessKind::Write, Op, Name, Origin);
  }

  HbGraph Hb;
  LocationInterner Interner;
};

TEST_F(DetectorTest, WriteThenUnorderedReadRaces) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].First.Kind, AccessKind::Write);
  EXPECT_EQ(D.races()[0].Second.Kind, AccessKind::Read);
  EXPECT_EQ(D.races()[0].Kind, RaceKind::Variable);
}

TEST_F(DetectorTest, WriteThenOrderedReadDoesNotRace) {
  OpId A = op(), B = op();
  edge(A, B);
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, ReadThenUnorderedWriteRaces) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(read(A, "x"));
  D.onMemoryAccess(write(B, "x"));
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].First.Kind, AccessKind::Read);
}

TEST_F(DetectorTest, WriteWriteRaces) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(write(B, "x"));
  ASSERT_EQ(D.races().size(), 1u);
}

TEST_F(DetectorTest, ReadReadNeverRaces) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(read(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, SameOperationNeverRaces) {
  OpId A = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(A, "x"));
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, BottomSlotsNeverRace) {
  OpId A = op();
  RaceDetector D(Hb, Interner);
  // First-ever access to a location: LastRead/LastWrite are ⊥.
  D.onMemoryAccess(read(A, "x"));
  D.onMemoryAccess(write(A, "y"));
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, DistinctLocationsIndependent) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "y"));
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, OnePerLocationDedup) {
  OpId A = op(), B = op(), C = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  D.onMemoryAccess(read(C, "x")); // Second race on same location.
  EXPECT_EQ(D.races().size(), 1u);
}

TEST_F(DetectorTest, OnePerLocationDisabled) {
  OpId A = op(), B = op(), C = op();
  DetectorOptions Opts;
  Opts.OnePerLocation = false;
  RaceDetector D(Hb, Interner, Opts);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  D.onMemoryAccess(read(C, "x"));
  EXPECT_EQ(D.races().size(), 2u);
}

TEST_F(DetectorTest, SlotOverwriteLosesHistory) {
  // The paper's Sec. 5.1 limitation, literally: reads 3,1 then write 2
  // with 1 -> 2; the single-slot detector misses the 2-3 race.
  OpId O1 = op(), O2 = op(), O3 = op();
  edge(O1, O2);
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(read(O3, "e"));
  D.onMemoryAccess(read(O1, "e")); // Overwrites O3 in LastRead.
  D.onMemoryAccess(write(O2, "e"));
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, FullHistoryCatchesSlotOverwrite) {
  OpId O1 = op(), O2 = op(), O3 = op();
  edge(O1, O2);
  DetectorOptions Opts;
  Opts.HistoryMode = DetectorOptions::Mode::FullHistory;
  RaceDetector D(Hb, Interner, Opts);
  D.onMemoryAccess(read(O3, "e"));
  D.onMemoryAccess(read(O1, "e"));
  D.onMemoryAccess(write(O2, "e"));
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].First.Op, O3);
  EXPECT_EQ(D.races()[0].Second.Op, O2);
}

TEST_F(DetectorTest, FullHistoryAgreesOnSimpleCases) {
  OpId A = op(), B = op();
  DetectorOptions Opts;
  Opts.HistoryMode = DetectorOptions::Mode::FullHistory;
  RaceDetector Full(Hb, Interner, Opts);
  RaceDetector Slot(Hb, Interner);
  for (RaceDetector *D : {&Full, &Slot}) {
    D->onMemoryAccess(write(A, "x"));
    D->onMemoryAccess(read(B, "x"));
  }
  EXPECT_EQ(Full.races().size(), Slot.races().size());
}

TEST_F(DetectorTest, FunctionDeclClassification) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "f", AccessOrigin::FunctionDecl));
  D.onMemoryAccess(read(B, "f", AccessOrigin::FunctionCall));
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].Kind, RaceKind::Function);
}

TEST_F(DetectorTest, HtmlClassification) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  Access W;
  W.Kind = AccessKind::Write;
  W.Op = A;
  W.Origin = AccessOrigin::ElemInsert;
  W.Loc = Interner.intern(HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "dw"});
  Access R;
  R.Kind = AccessKind::Read;
  R.Op = B;
  R.Origin = AccessOrigin::ElemLookup;
  R.Loc = W.Loc;
  D.onMemoryAccess(W);
  D.onMemoryAccess(R);
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].Kind, RaceKind::Html);
}

TEST_F(DetectorTest, EventDispatchClassification) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  Access W;
  W.Kind = AccessKind::Write;
  W.Op = A;
  W.Origin = AccessOrigin::HandlerInstall;
  W.Loc = Interner.intern(EventHandlerLoc{5, 0, "load", 0});
  Access R = W;
  R.Kind = AccessKind::Read;
  R.Op = B;
  R.Origin = AccessOrigin::HandlerFire;
  D.onMemoryAccess(W);
  D.onMemoryAccess(R);
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].Kind, RaceKind::EventDispatch);
}

TEST_F(DetectorTest, PriorReadFlagOnSecondWrite) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "v", AccessOrigin::FormFieldWrite));
  D.onMemoryAccess(read(B, "v", AccessOrigin::FormFieldRead));
  // B reads v, then writes it: the guarded-write shape.
  D.onMemoryAccess(write(B, "v", AccessOrigin::FormFieldWrite));
  ASSERT_GE(D.races().size(), 1u);
  // Due to one-per-location the race reported is (A write, B read) with
  // no guard flag; disable dedup to see the guarded write.
  DetectorOptions Opts;
  Opts.OnePerLocation = false;
  HbGraph Hb2;
  OpId A2 = Hb2.addOperation(Operation());
  OpId B2 = Hb2.addOperation(Operation());
  RaceDetector D2(Hb2, Interner, Opts);
  auto Mk = [&](AccessKind Kind, OpId Op) {
    Access Acc;
    Acc.Kind = Kind;
    Acc.Op = Op;
    Acc.Origin = Kind == AccessKind::Read ? AccessOrigin::FormFieldRead
                                          : AccessOrigin::FormFieldWrite;
    Acc.Loc = Interner.internVar(0, "v");
    return Acc;
  };
  D2.onMemoryAccess(Mk(AccessKind::Write, A2));
  D2.onMemoryAccess(Mk(AccessKind::Read, B2));
  D2.onMemoryAccess(Mk(AccessKind::Write, B2));
  bool SawGuarded = false;
  for (const Race &R : D2.races())
    if (R.Second.Op == B2 && R.Second.Kind == AccessKind::Write)
      SawGuarded = R.WriteHadPriorReadInOp;
  EXPECT_TRUE(SawGuarded);
}

TEST_F(DetectorTest, PriorReadFlagOnFirstWrite) {
  // The guarded write is stored in the slot; a later racing user write
  // must still see the guard flag (the Sec. 5.3 refinement applies to
  // whichever side wrote after reading).
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(read(A, "v", AccessOrigin::FormFieldRead));
  D.onMemoryAccess(write(A, "v", AccessOrigin::FormFieldWrite));
  D.onMemoryAccess(write(B, "v", AccessOrigin::UserInput));
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_TRUE(D.races()[0].WriteHadPriorReadInOp);
}

TEST_F(DetectorTest, CountByKind) {
  OpId A = op(), B = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  D.onMemoryAccess(write(A, "f", AccessOrigin::FunctionDecl));
  D.onMemoryAccess(read(B, "f", AccessOrigin::FunctionCall));
  EXPECT_EQ(D.countByKind(RaceKind::Variable), 1u);
  EXPECT_EQ(D.countByKind(RaceKind::Function), 1u);
  EXPECT_EQ(D.countByKind(RaceKind::Html), 0u);
}

TEST_F(DetectorTest, ChcQueriesCounted) {
  OpId A = op(), B = op();
  Hb.setUseVectorClocks(false); // Legacy path: no epoch probes.
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  EXPECT_EQ(D.chcQueries(), 0u); // ⊥ slot: no query needed... but the
  // map lookup finds nothing, so no CHC call either.
  D.onMemoryAccess(read(B, "x"));
  EXPECT_EQ(D.chcQueries(), 1u);
}

TEST_F(DetectorTest, EpochOracleAnswersWithoutGenericQueries) {
  // Under the vector-clock strategy every CHC question is one O(1)
  // epoch probe: chcQueries stays 0, every question lands in epochHits,
  // and every read resolves on the epoch path.
  OpId A = op(), B = op(), C = op();
  edge(A, C);
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(C, "x")); // Ordered: no race.
  D.onMemoryAccess(read(B, "x")); // Concurrent with the write: race.
  EXPECT_EQ(D.chcQueries(), 0u);
  EXPECT_GT(D.epochHits(), 0u);
  EXPECT_EQ(D.readsSeen(), 2u);
  EXPECT_EQ(D.epochReads(), 2u);
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].Second.Op, B);
}

TEST_F(DetectorTest, TrackedLocationsIsUnionOfSlots) {
  // A location read AND written is one tracked location, not two: the
  // count is the union of the read slots, write slots, and history map.
  OpId A = op(), B = op();
  edge(A, B);
  RaceDetector D(Hb, Interner);
  EXPECT_EQ(D.trackedLocations(), 0u);
  D.onMemoryAccess(write(A, "x"));
  EXPECT_EQ(D.trackedLocations(), 1u);
  D.onMemoryAccess(read(B, "x")); // Same location, other slot.
  EXPECT_EQ(D.trackedLocations(), 1u);
  D.onMemoryAccess(read(B, "y")); // Read-only location.
  EXPECT_EQ(D.trackedLocations(), 2u);
  D.onMemoryAccess(write(A, "z")); // Write-only location.
  EXPECT_EQ(D.trackedLocations(), 3u);
}

TEST_F(DetectorTest, TrackedLocationsFullHistoryMode) {
  OpId A = op(), B = op();
  DetectorOptions Opts;
  Opts.HistoryMode = DetectorOptions::Mode::FullHistory;
  RaceDetector D(Hb, Interner, Opts);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  D.onMemoryAccess(read(B, "y"));
  EXPECT_EQ(D.trackedLocations(), 2u);
}

TEST_F(DetectorTest, PairCacheAnswersRepeatedPairsAcrossLocations) {
  OpId A = op(), B = op();
  Hb.setUseVectorClocks(false); // Pair cache only backs the legacy path.
  DetectorOptions Opts;
  Opts.OnePerLocation = false;
  RaceDetector D(Hb, Interner, Opts);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  EXPECT_EQ(D.chcQueries(), 1u);
  EXPECT_EQ(D.races().size(), 1u);
  // The same (A, B) question on another location hits the pair cache -
  // no new oracle query, but the race is still reported.
  D.onMemoryAccess(write(A, "y"));
  D.onMemoryAccess(read(B, "y"));
  EXPECT_EQ(D.chcQueries(), 1u);
  EXPECT_GT(D.epochHits(), 0u);
  EXPECT_EQ(D.races().size(), 2u);
}

TEST_F(DetectorTest, ReportedLocationSkipsOracleEntirely) {
  OpId A = op(), B = op(), C = op();
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  ASSERT_EQ(D.races().size(), 1u);
  uint64_t Queries = D.chcQueries();
  // One-per-location already fired: later accesses to x can't change
  // any output, so no ordering question reaches the oracle.
  D.onMemoryAccess(read(C, "x"));
  D.onMemoryAccess(write(C, "x"));
  EXPECT_EQ(D.chcQueries(), Queries);
  EXPECT_GT(D.epochHits(), 0u);
  EXPECT_EQ(D.races().size(), 1u);
}

TEST_F(DetectorTest, SlotEpochCacheAnswersSameOpRecheck) {
  OpId A = op(), B = op();
  edge(A, B); // Ordered: the verdict is "not concurrent".
  Hb.setUseVectorClocks(false); // Distinguish the slot cache from epochs.
  DetectorOptions Opts;
  Opts.OnePerLocation = false;
  RaceDetector D(Hb, Interner, Opts);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  uint64_t Queries = D.chcQueries();
  // B reads x again: LastWrite slot still holds A and was just checked
  // against B, so the slot's epoch verdict answers without the cache map.
  D.onMemoryAccess(read(B, "x"));
  EXPECT_EQ(D.chcQueries(), Queries);
  EXPECT_GT(D.epochHits(), 0u);
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, SameEpochReReadStaysEpochRepresentation) {
  // Re-reads by the same operation and reads by an ordered successor
  // keep the single-epoch read state (the FastTrack common case): the
  // epoch slides forward, it never inflates.
  OpId A = op(), B = op();
  edge(A, B);
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(read(A, "x"));
  D.onMemoryAccess(read(A, "x")); // Same epoch: no probe, no change.
  D.onMemoryAccess(read(B, "x")); // Ordered after A: the epoch slides.
  EXPECT_EQ(D.readInflations(), 0u);
  EXPECT_EQ(D.readVectorLocations(), 0u);
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, ConcurrentReadInflatesAndDominatingWriteDeflates) {
  OpId A = op(), B = op(), C = op(), E = op();
  edge(A, C);
  edge(B, C);
  edge(C, E);
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(read(A, "x"));
  EXPECT_EQ(D.readInflations(), 0u); // First read: epoch form.
  D.onMemoryAccess(read(B, "x"));    // Concurrent with A: inflate.
  EXPECT_EQ(D.readInflations(), 1u);
  EXPECT_EQ(D.readVectorLocations(), 1u);
  // C is ordered after both readers: its write dominates every read
  // epoch and collapses the vector back to the empty state.
  D.onMemoryAccess(write(C, "x"));
  EXPECT_EQ(D.readDeflations(), 1u);
  EXPECT_TRUE(D.races().empty());
  // The location stays counted as ever-inflated (memory accounting),
  // but the live state is back to O(1); a later ordered read re-enters
  // the epoch form without a new inflation.
  D.onMemoryAccess(read(E, "x"));
  EXPECT_EQ(D.readInflations(), 1u);
  EXPECT_EQ(D.readVectorLocations(), 1u);
}

TEST_F(DetectorTest, WriteAfterConcurrentReadsStillRacesWhenUnordered) {
  // Deflation must never hide a race: a write concurrent with one of
  // the active readers reports before any state collapses.
  OpId A = op(), B = op(), C = op();
  edge(A, C); // C is after A but concurrent with B.
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(read(A, "x"));
  D.onMemoryAccess(read(B, "x"));
  EXPECT_EQ(D.readInflations(), 1u);
  D.onMemoryAccess(write(C, "x"));
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].First.Op, B); // LastRead held B.
  EXPECT_EQ(D.chcQueries(), 0u);       // All answered by epoch probes.
}

TEST_F(DetectorTest, DeflationShortcutSkipsReadCheckSoundly) {
  // After a write dominates all reads, a later write ordered after that
  // write needs no read probe (reads HB LastWrite HB new write); one
  // that is NOT ordered after it must still be checked and race.
  OpId A = op(), B = op(), C = op(), E = op();
  edge(A, B);
  edge(B, E);
  DetectorOptions Opts;
  Opts.OnePerLocation = false;
  RaceDetector D(Hb, Interner, Opts);
  D.onMemoryAccess(read(A, "x"));
  D.onMemoryAccess(write(B, "x")); // Dominates the read: covered.
  D.onMemoryAccess(write(E, "x")); // Ordered after B: shortcut, no race.
  EXPECT_TRUE(D.races().empty());
  // C is concurrent with everything: both slot checks race.
  D.onMemoryAccess(write(C, "x"));
  EXPECT_EQ(D.races().size(), 1u); // vs LastWrite E (write-write).
  EXPECT_EQ(D.chcQueries(), 0u);
}

TEST_F(DetectorTest, InlineDispatchNestedReadDoesNotInflate) {
  // Inline event dispatch nests operations, so a location's reads can
  // arrive in descending op order; a read ordered before the stored
  // (newer) read epoch is subsumed, not a reason to inflate.
  OpId A = op(), B = op();
  edge(A, B);
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(read(B, "x")); // The nested (newer) op reads first.
  D.onMemoryAccess(read(A, "x")); // Its caller reads after returning? No:
  // replay order, A's read streams later but A happens-before B.
  EXPECT_EQ(D.readInflations(), 0u);
  EXPECT_TRUE(D.races().empty());
}

TEST_F(DetectorTest, ForceReadVectorsKeepsRaceOutputIdentical) {
  // The debug option pins every read state in the vector form; races
  // and attrition metadata must not move.
  for (bool Force : {false, true}) {
    HbGraph G;
    LocationInterner I;
    OpId A = G.addOperation(Operation());
    OpId B = G.addOperation(Operation());
    OpId C = G.addOperation(Operation());
    G.addEdge(A, C, HbRule::RProgram);
    DetectorOptions Opts;
    Opts.ForceReadVectors = Force;
    RaceDetector D(G, I, Opts);
    auto Acc = [&](AccessKind K, OpId Op, const char *Name) {
      Access X;
      X.Kind = K;
      X.Op = Op;
      X.Loc = I.internVar(0, Name);
      D.onMemoryAccess(X);
    };
    Acc(AccessKind::Read, A, "x");
    Acc(AccessKind::Read, C, "x");
    Acc(AccessKind::Write, C, "x");
    Acc(AccessKind::Write, B, "x");
    ASSERT_EQ(D.races().size(), 1u) << "Force=" << Force;
    EXPECT_EQ(D.races()[0].First.Op, C);
    EXPECT_EQ(D.races()[0].Second.Op, B);
    EXPECT_TRUE(D.races()[0].WriteHadPriorReadInOp);
    if (Force) {
      EXPECT_GT(D.readInflations(), 0u);
      EXPECT_EQ(D.readDeflations(), 0u); // Never deflates when forced.
    } else {
      EXPECT_EQ(D.readInflations(), 0u); // All reads stayed epochs.
    }
  }
}

TEST_F(DetectorTest, DetectorBytesCountsInflatedStorage) {
  RaceDetector D(Hb, Interner);
  uint64_t Empty = D.detectorBytes();
  // Five mutually concurrent readers: the read vector and reader set
  // outgrow their inline slots, and the heap spill must show up in the
  // byte accounting.
  for (int I = 0; I < 5; ++I)
    D.onMemoryAccess(read(op(), "x"));
  EXPECT_GT(D.readInflations(), 0u);
  EXPECT_GT(D.detectorBytes(), Empty);
}

TEST_F(DetectorTest, DiamondOrderingSuppressesRace) {
  OpId A = op(), B = op(), C = op(), D2 = op();
  edge(A, B);
  edge(A, C);
  edge(B, D2);
  edge(C, D2);
  RaceDetector D(Hb, Interner);
  D.onMemoryAccess(write(A, "x"));
  D.onMemoryAccess(read(D2, "x")); // Ordered through either branch.
  EXPECT_TRUE(D.races().empty());
  // But the branches race with each other.
  D.onMemoryAccess(write(B, "y"));
  D.onMemoryAccess(write(C, "y"));
  EXPECT_EQ(D.races().size(), 1u);
}

} // namespace

//===- tests/hb_property_test.cpp - happens-before property tests -------------===//
//
// Parameterized property checks over randomly generated DAGs: the two
// reachability representations must agree everywhere; the relation must
// be a strict partial order; CHC must be symmetric and irreflexive; and
// memoized answers must be stable as the graph grows.
//
//===----------------------------------------------------------------------===//

#include "hb/HbGraph.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace wr;

namespace {

/// Generates a random DAG honoring the builder contract (edges ascend).
void buildRandomDag(HbGraph &G, Rng &R, size_t N, double EdgeDensity) {
  Operation Meta;
  for (size_t I = 0; I < N; ++I) {
    OpId Op = G.addOperation(Meta);
    if (Op == 1)
      continue;
    // Each new op picks a few random predecessors.
    size_t Preds = static_cast<size_t>(R.nextBelow(4));
    for (size_t P = 0; P < Preds; ++P)
      if (R.nextBool(EdgeDensity))
        G.addEdge(static_cast<OpId>(R.nextInRange(
                      1, static_cast<int64_t>(Op) - 1)),
                  Op, HbRule::RProgram);
  }
}

class HbPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HbPropertyTest, DfsAndVectorClockAgree) {
  Rng R(GetParam());
  HbGraph G;
  buildRandomDag(G, R, 150, 0.7);
  size_t N = G.numOperations();
  for (OpId A = 1; A <= N; ++A)
    for (OpId B = 1; B <= N; B += 3) // Sampled to keep runtime sane.
      ASSERT_EQ(G.reachesDfs(A, B), G.reachesVectorClock(A, B))
          << "seed " << GetParam() << " pair " << A << "," << B;
}

TEST_P(HbPropertyTest, StrictPartialOrder) {
  Rng R(GetParam());
  HbGraph G;
  buildRandomDag(G, R, 100, 0.6);
  size_t N = G.numOperations();
  // Irreflexive + asymmetric.
  for (OpId A = 1; A <= N; ++A) {
    EXPECT_FALSE(G.happensBefore(A, A));
    for (OpId B = A + 1; B <= N; B += 5)
      EXPECT_FALSE(G.happensBefore(A, B) && G.happensBefore(B, A));
  }
  // Transitive (sampled triples).
  Rng Sampler(GetParam() ^ 0xabcdef);
  for (int I = 0; I < 500; ++I) {
    OpId A = static_cast<OpId>(Sampler.nextInRange(1, 98));
    OpId B = static_cast<OpId>(
        Sampler.nextInRange(A + 1, 99));
    OpId C = static_cast<OpId>(
        Sampler.nextInRange(B + 1, 100));
    if (G.happensBefore(A, B) && G.happensBefore(B, C))
      EXPECT_TRUE(G.happensBefore(A, C))
          << A << "->" << B << "->" << C;
  }
}

TEST_P(HbPropertyTest, ChcSymmetricAndIrreflexive) {
  Rng R(GetParam());
  HbGraph G;
  buildRandomDag(G, R, 80, 0.5);
  size_t N = G.numOperations();
  for (OpId A = 1; A <= N; A += 2) {
    EXPECT_FALSE(G.canHappenConcurrently(A, A));
    for (OpId B = 1; B <= N; B += 3)
      EXPECT_EQ(G.canHappenConcurrently(A, B),
                G.canHappenConcurrently(B, A));
  }
}

TEST_P(HbPropertyTest, EdgesImplyOrder) {
  Rng R(GetParam());
  HbGraph G;
  buildRandomDag(G, R, 120, 0.8);
  for (OpId Op = 1; Op <= G.numOperations(); ++Op)
    for (OpId Succ : G.successors(Op)) {
      EXPECT_TRUE(G.happensBefore(Op, Succ));
      EXPECT_FALSE(G.canHappenConcurrently(Op, Succ));
    }
}

TEST_P(HbPropertyTest, MemoStableUnderGrowth) {
  Rng R(GetParam());
  HbGraph G;
  buildRandomDag(G, R, 60, 0.6);
  size_t N = G.numOperations();
  // Record all answers, grow the graph, re-check.
  std::vector<std::vector<bool>> Before(N + 1,
                                        std::vector<bool>(N + 1, false));
  for (OpId A = 1; A <= N; ++A)
    for (OpId B = 1; B <= N; ++B)
      Before[A][B] = G.happensBefore(A, B);
  buildRandomDag(G, R, 40, 0.6); // 40 more ops with edges into them.
  for (OpId A = 1; A <= N; ++A)
    for (OpId B = 1; B <= N; ++B)
      ASSERT_EQ(G.happensBefore(A, B), Before[A][B])
          << "growth changed " << A << "->" << B;
}

TEST_P(HbPropertyTest, ExplainPathIsRealPath) {
  Rng R(GetParam());
  HbGraph G;
  buildRandomDag(G, R, 100, 0.7);
  Rng Sampler(GetParam() + 1);
  for (int I = 0; I < 50; ++I) {
    OpId A = static_cast<OpId>(Sampler.nextInRange(1, 50));
    OpId B = static_cast<OpId>(Sampler.nextInRange(51, 100));
    std::vector<OpId> Path = G.explainPath(A, B);
    if (!G.happensBefore(A, B)) {
      EXPECT_TRUE(Path.empty());
      continue;
    }
    ASSERT_GE(Path.size(), 2u);
    EXPECT_EQ(Path.front(), A);
    EXPECT_EQ(Path.back(), B);
    for (size_t Step = 0; Step + 1 < Path.size(); ++Step) {
      const auto &Succ = G.successors(Path[Step]);
      EXPECT_NE(std::find(Succ.begin(), Succ.end(), Path[Step + 1]),
                Succ.end())
          << "gap in path at " << Path[Step];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HbPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

} // namespace

//===- tests/js_property_test.cpp - MiniJS property & differential tests -------===//
//
// Parameterized sweeps comparing MiniJS semantics against a C++ model:
// arithmetic on sampled doubles, number<->string round trips, array
// operation sequences, and string method agreement.
//
//===----------------------------------------------------------------------===//

#include "js/Interpreter.h"
#include "js/Parser.h"
#include "js/StdLib.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wr;
using namespace wr::js;

namespace {

class JsEval {
public:
  JsEval() : Global(TheHeap.allocEnv(nullptr)), Interp(TheHeap, Global) {
    installStdLib(Interp, 1);
  }

  /// Evaluates an expression; returns the value of `result`.
  Value eval(const std::string &ExprText) {
    ParseResult R = Parser::parseProgram("var result = " + ExprText + ";");
    EXPECT_TRUE(R.ok()) << ExprText;
    if (!R.Ast)
      return Value();
    Programs.push_back(std::move(R.Ast));
    Completion C = Interp.runProgram(*Programs.back());
    EXPECT_FALSE(C.isThrow()) << ExprText << " threw "
                              << toDisplayString(C.V);
    Value *V = Global->findOwn("result");
    return V ? *V : Value();
  }

  Heap TheHeap;
  Env *Global;
  Interpreter Interp;
  std::vector<std::unique_ptr<Program>> Programs;
};

class JsArithmeticProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsArithmeticProperty, MatchesNativeDoubles) {
  Rng R(GetParam());
  JsEval E;
  for (int I = 0; I < 40; ++I) {
    double A = static_cast<double>(R.nextInRange(-10000, 10000)) / 16.0;
    double B = static_cast<double>(R.nextInRange(-10000, 10000)) / 16.0;
    std::string SA = numberToString(A), SB = numberToString(B);
    EXPECT_DOUBLE_EQ(E.eval(strFormat("(%s) + (%s)", SA.c_str(),
                                      SB.c_str()))
                         .asNumber(),
                     A + B);
    EXPECT_DOUBLE_EQ(E.eval(strFormat("(%s) * (%s)", SA.c_str(),
                                      SB.c_str()))
                         .asNumber(),
                     A * B);
    EXPECT_DOUBLE_EQ(E.eval(strFormat("(%s) - (%s)", SA.c_str(),
                                      SB.c_str()))
                         .asNumber(),
                     A - B);
    if (B != 0)
      EXPECT_DOUBLE_EQ(E.eval(strFormat("(%s) / (%s)", SA.c_str(),
                                        SB.c_str()))
                           .asNumber(),
                       A / B);
    EXPECT_EQ(E.eval(strFormat("(%s) < (%s)", SA.c_str(), SB.c_str()))
                  .asBool(),
              A < B);
  }
}

TEST_P(JsArithmeticProperty, BitwiseMatchesInt32) {
  Rng R(GetParam());
  JsEval E;
  for (int I = 0; I < 40; ++I) {
    int32_t A = static_cast<int32_t>(R.next());
    int32_t B = static_cast<int32_t>(R.next());
    int Shift = static_cast<int>(R.nextBelow(32));
    auto Num = [](int32_t V) {
      return strFormat("(%lld)", static_cast<long long>(V));
    };
    EXPECT_DOUBLE_EQ(
        E.eval(Num(A) + " & " + Num(B)).asNumber(),
        static_cast<double>(A & B));
    EXPECT_DOUBLE_EQ(
        E.eval(Num(A) + " | " + Num(B)).asNumber(),
        static_cast<double>(A | B));
    EXPECT_DOUBLE_EQ(
        E.eval(Num(A) + " ^ " + Num(B)).asNumber(),
        static_cast<double>(A ^ B));
    EXPECT_DOUBLE_EQ(
        E.eval(Num(A) + " >> " + std::to_string(Shift)).asNumber(),
        static_cast<double>(A >> Shift));
    EXPECT_DOUBLE_EQ(
        E.eval(Num(A) + " >>> " + std::to_string(Shift)).asNumber(),
        static_cast<double>(static_cast<uint32_t>(A) >> Shift));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsArithmeticProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

class JsNumberRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(JsNumberRoundTrip, StringConversionRoundTrips) {
  double V = GetParam();
  std::string S = numberToString(V);
  JsEval E;
  Value Back = E.eval("Number('" + S + "')");
  if (std::isnan(V))
    EXPECT_TRUE(std::isnan(Back.asNumber()));
  else
    EXPECT_DOUBLE_EQ(Back.asNumber(), V);
}

INSTANTIATE_TEST_SUITE_P(
    Values, JsNumberRoundTrip,
    ::testing::Values(0.0, 1.0, -1.0, 0.1, 0.2, 1.5, 42.0, -273.15,
                      1e-9, 6.022e23, 1e21, 9007199254740991.0,
                      0.30000000000000004));

class JsArrayOpsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsArrayOpsProperty, RandomOpSequenceMatchesVector) {
  // Differential test: apply the same random push/pop/shift/unshift
  // sequence to a JS array and a std::vector, compare join() output.
  Rng R(GetParam());
  std::vector<int> Model;
  std::string Script = "var a = [];";
  for (int I = 0; I < 60; ++I) {
    switch (R.nextBelow(4)) {
    case 0: {
      int V = static_cast<int>(R.nextInRange(0, 99));
      Script += strFormat("a.push(%d);", V);
      Model.push_back(V);
      break;
    }
    case 1:
      Script += "a.pop();";
      if (!Model.empty())
        Model.pop_back();
      break;
    case 2:
      Script += "a.shift();";
      if (!Model.empty())
        Model.erase(Model.begin());
      break;
    default: {
      int V = static_cast<int>(R.nextInRange(0, 99));
      Script += strFormat("a.unshift(%d);", V);
      Model.insert(Model.begin(), V);
      break;
    }
    }
  }
  JsEval E;
  ParseResult P = Parser::parseProgram(Script);
  ASSERT_TRUE(P.ok());
  E.Programs.push_back(std::move(P.Ast));
  ASSERT_FALSE(E.Interp.runProgram(*E.Programs.back()).isThrow());
  Value Joined = E.eval("a.join(',')");
  std::string Expected;
  for (size_t I = 0; I < Model.size(); ++I) {
    if (I)
      Expected += ',';
    Expected += std::to_string(Model[I]);
  }
  EXPECT_EQ(Joined.asString(), Expected) << "seed " << GetParam();
  EXPECT_DOUBLE_EQ(E.eval("a.length").asNumber(),
                   static_cast<double>(Model.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsArrayOpsProperty,
                         ::testing::Values(7, 14, 21, 28, 35, 42, 49));

class JsStringProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsStringProperty, MethodsMatchNative) {
  Rng R(GetParam());
  JsEval E;
  for (int I = 0; I < 25; ++I) {
    // Random lowercase strings.
    std::string S;
    size_t Len = R.nextBelow(12);
    for (size_t C = 0; C < Len; ++C)
      S += static_cast<char>('a' + R.nextBelow(6));
    std::string Needle;
    for (size_t C = 0; C < 2; ++C)
      Needle += static_cast<char>('a' + R.nextBelow(6));

    EXPECT_DOUBLE_EQ(E.eval("'" + S + "'.length").asNumber(),
                     static_cast<double>(S.size()));
    double Found = E.eval("'" + S + "'.indexOf('" + Needle + "')")
                       .asNumber();
    size_t NativeFound = S.find(Needle);
    EXPECT_DOUBLE_EQ(Found, NativeFound == std::string::npos
                                ? -1.0
                                : static_cast<double>(NativeFound));
    size_t A = R.nextBelow(Len + 1), B = R.nextBelow(Len + 1);
    std::string Sub =
        E.eval(strFormat("'%s'.substring(%zu, %zu)", S.c_str(), A, B))
            .asString();
    size_t Lo = std::min(A, B), Hi = std::max(A, B);
    EXPECT_EQ(Sub, S.substr(Lo, Hi - Lo));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsStringProperty,
                         ::testing::Values(3, 6, 9, 12));

class JsHoistingProperty : public ::testing::TestWithParam<int> {};

TEST_P(JsHoistingProperty, CallBeforeDeclWorksAtAnyDistance) {
  // Function declarations are writes at scope entry regardless of how
  // deep in the body they sit (paper Sec. 4.1's model).
  int Filler = GetParam();
  std::string Script = "var result = target();";
  for (int I = 0; I < Filler; ++I)
    Script += strFormat("var pad%d = %d;", I, I);
  Script += "function target() { return 77; }";
  JsEval E;
  ParseResult P = Parser::parseProgram(Script);
  ASSERT_TRUE(P.ok());
  E.Programs.push_back(std::move(P.Ast));
  Completion C = E.Interp.runProgram(*E.Programs.back());
  ASSERT_FALSE(C.isThrow());
  EXPECT_DOUBLE_EQ(E.Global->findOwn("result")->asNumber(), 77);
}

TEST_P(JsHoistingProperty, NestedBlocksHoistToo) {
  int Depth = GetParam() % 6 + 1;
  std::string Open, Close;
  for (int I = 0; I < Depth; ++I) {
    Open += strFormat("if (true) { ");
    Close += "}";
  }
  std::string Script = "var result = f();" + Open +
                       "function f() { return 5; }" + Close;
  JsEval E;
  ParseResult P = Parser::parseProgram(Script);
  ASSERT_TRUE(P.ok());
  E.Programs.push_back(std::move(P.Ast));
  Completion C = E.Interp.runProgram(*E.Programs.back());
  ASSERT_FALSE(C.isThrow()) << toDisplayString(C.V);
  EXPECT_DOUBLE_EQ(E.Global->findOwn("result")->asNumber(), 5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JsHoistingProperty,
                         ::testing::Values(0, 1, 5, 20, 100));

} // namespace

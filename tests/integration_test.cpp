//===- tests/integration_test.cpp - whole-engine integration tests -------------===//
//
// Cross-module scenarios: nested frames, dynamic insertion chains, GC
// pressure during page loads, timer-clear races (our extension closing
// the paper's Sec. 7 gap), schedule invariance of HB-based detection,
// and event-dispatch phasing.
//
//===----------------------------------------------------------------------===//

#include "detect/RaceDetector.h"
#include "detect/Report.h"
#include "runtime/Browser.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::rt;
using namespace wr::detect;

namespace {

class IntegrationTest : public ::testing::Test {
protected:
  IntegrationTest() { reset(BrowserOptions()); }

  void reset(BrowserOptions Opts) {
    B = std::make_unique<Browser>(Opts);
    D = std::make_unique<RaceDetector>(B->hb(), B->interner());
    B->addSink(D.get());
  }

  std::string global(const std::string &Name) {
    js::Value *V = B->interp().globalEnv()->findOwn(Name);
    return V ? js::toDisplayString(*V) : "<undeclared>";
  }

  std::unique_ptr<Browser> B;
  std::unique_ptr<RaceDetector> D;
};

TEST_F(IntegrationTest, TwoLevelNestedIframes) {
  B->network().addResource("index.html",
                           "<script>var log = 'main';</script>"
                           "<iframe src=\"mid.html\"></iframe>",
                           10);
  B->network().addResource("mid.html",
                           "<script>log += '+mid';</script>"
                           "<iframe src=\"inner.html\"></iframe>",
                           500);
  B->network().addResource("inner.html",
                           "<script>log += '+inner';</script>", 500);
  B->loadPage("index.html");
  B->runToQuiescence();
  EXPECT_EQ(global("log"), "main+mid+inner");
  EXPECT_EQ(B->windows().size(), 3u);
  // Every window completed its load cycle (rule 7 chains them).
  for (const auto &W : B->windows())
    EXPECT_TRUE(W->loadFired());
  // Rule 6 ordering: no races on log despite three documents (each
  // nested script is ordered after its iframe's creation).
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    EXPECT_FALSE(Loc && Loc->Name == "log") << describeRace(R, B->hb());
  }
}

TEST_F(IntegrationTest, SiblingIframesShareGlobalsAndRace) {
  B->network().addResource("index.html",
                           "<iframe src=\"a.html\"></iframe>"
                           "<iframe src=\"b.html\"></iframe>",
                           10);
  B->network().addResource("a.html", "<script>shared = 'a';</script>",
                           400);
  B->network().addResource("b.html", "<script>shared = 'b';</script>",
                           600);
  B->loadPage("index.html");
  B->runToQuiescence();
  EXPECT_EQ(global("shared"), "b"); // Later write wins this schedule.
  bool Raced = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (Loc && Loc->Name == "shared")
      Raced = true;
  }
  EXPECT_TRUE(Raced);
}

TEST_F(IntegrationTest, DynamicScriptInsertsScript) {
  B->network().addResource(
      "index.html",
      "<script>"
      "var s = document.createElement('script');"
      "s.src = 'first.js';"
      "document.body.appendChild(s);"
      "</script>",
      10);
  B->network().addResource("first.js",
                           "var s2 = document.createElement('script');"
                           "s2.src = 'second.js';"
                           "document.body.appendChild(s2);"
                           "var firstRan = true;",
                           200);
  B->network().addResource("second.js", "var secondRan = true;", 200);
  B->loadPage("index.html");
  B->runToQuiescence();
  EXPECT_EQ(global("firstRan"), "true");
  EXPECT_EQ(global("secondRan"), "true");
  // Rule 2 chains creator -> exe at each hop: no races on these globals.
  EXPECT_TRUE(D->races().empty()) << describeRaces(D->races(), B->hb());
}

TEST_F(IntegrationTest, GcPressureDuringPageLoad) {
  BrowserOptions Opts;
  reset(Opts);
  B->heap().setGcThreshold(64); // Collect constantly.
  B->network().addResource(
      "index.html",
      "<script>"
      "var keep = [];"
      "function tick(n) {"
      "  var garbage = [];"
      "  for (var i = 0; i < 50; i++) garbage.push({v: i});"
      "  keep.push(n);"
      "  if (n < 10) setTimeout(function() { tick(n + 1); }, 5);"
      "}"
      "tick(0);"
      "</script>",
      10);
  B->loadPage("index.html");
  B->runToQuiescence();
  EXPECT_EQ(global("keep"), "0,1,2,3,4,5,6,7,8,9,10");
  EXPECT_GT(B->heap().numCollections(), 0u);
  EXPECT_TRUE(B->crashLog().empty());
}

TEST_F(IntegrationTest, TimerClearRaceDetected) {
  // Our extension past the paper's Sec. 7 gap: an iframe-load handler
  // clearing a timer races with that timer's firing (they are unordered;
  // whether the callback runs depends on frame latency vs timer delay).
  // Frame slower than the timer: the callback fires (read), then the
  // clear (write) - the read-write race is observable.
  B->network().addResource(
      "index.html",
      "<script>"
      "var late = setTimeout(function() { window.fired = true; }, 50);"
      "</script>"
      "<iframe src=\"frame.html\""
      " onload=\"clearTimeout(late);\"></iframe>",
      10);
  B->network().addResource("frame.html", "<p>x</p>", 200000);
  B->loadPage("index.html");
  B->runToQuiescence();
  bool TimerRace = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<EventHandlerLoc>(&R.Loc);
    if (Loc && Loc->EventType == "timer")
      TimerRace = true;
  }
  EXPECT_TRUE(TimerRace) << describeRaces(D->races(), B->hb());
}

TEST_F(IntegrationTest, TimerClearInstrumentationToggle) {
  BrowserOptions Opts;
  Opts.InstrumentTimerClears = false; // Paper fidelity.
  reset(Opts);
  B->network().addResource(
      "index.html",
      "<script>"
      "var late = setTimeout(function() { window.fired = true; }, 50);"
      "</script>"
      "<iframe src=\"frame.html\""
      " onload=\"clearTimeout(window.lateId);\"></iframe>"
      "<script>window.lateId = late;</script>",
      10);
  B->network().addResource("frame.html", "<p>x</p>", 200);
  B->loadPage("index.html");
  B->runToQuiescence();
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<EventHandlerLoc>(&R.Loc);
    EXPECT_FALSE(Loc && Loc->EventType == "timer");
  }
}

TEST_F(IntegrationTest, OrderedClearDoesNotRace) {
  // Clearing a timer from a later chained callback is ordered (rule 17).
  B->network().addResource(
      "index.html",
      "<script>"
      "var n = 0;"
      "var iv = setInterval(function() {"
      "  n++; if (n >= 3) clearInterval(iv);"
      "}, 10);"
      "</script>",
      10);
  B->loadPage("index.html");
  B->runToQuiescence();
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<EventHandlerLoc>(&R.Loc);
    EXPECT_FALSE(Loc && Loc->EventType == "timer")
        << describeRace(R, B->hb());
  }
}

TEST_F(IntegrationTest, HbRacesInvariantAcrossJitterSeeds) {
  // HB-based detection must report the same race *locations* regardless
  // of which schedule the jittered latencies produce.
  auto RacesWithSeed = [](uint64_t Seed) {
    BrowserOptions Opts;
    Opts.Seed = Seed;
    Browser B2(Opts);
    RaceDetector D2(B2.hb(), B2.interner());
    B2.addSink(&D2);
    B2.network().addResource("index.html",
                             "<iframe src=\"a.html\"></iframe>"
                             "<iframe src=\"b.html\"></iframe>",
                             10);
    B2.network().addResourceWithJitter(
        "a.html", "<script>x1 = 1; x2 = 1;</script>", 100, 5000);
    B2.network().addResourceWithJitter(
        "b.html", "<script>x1 = 2; x2 = 2;</script>", 100, 5000);
    B2.loadPage("index.html");
    B2.runToQuiescence();
    std::set<std::string> Locs;
    for (const Race &R : D2.races())
      Locs.insert(toString(R.Loc));
    return Locs;
  };
  auto First = RacesWithSeed(1);
  EXPECT_EQ(First.size(), 2u);
  for (uint64_t Seed : {2u, 3u, 10u, 99u})
    EXPECT_EQ(RacesWithSeed(Seed), First) << "seed " << Seed;
}

TEST_F(IntegrationTest, DispatchPhasingAcrossNestedTargets) {
  // Appendix A: one dispatch's handlers execute capture -> target ->
  // bubble, and two dispatches of the same event are fully ordered
  // (rule 9) - no races among any of the handler executions.
  B->network().addResource(
      "index.html",
      "<div id=\"outer\"><div id=\"mid\"><button id=\"btn\"></button>"
      "</div></div>"
      "<script>"
      "var log = '';"
      "function tag(t) { return function() { log += t; }; }"
      "document.getElementById('outer')"
      "  .addEventListener('click', tag('Oc'), true);"
      "document.getElementById('mid')"
      "  .addEventListener('click', tag('Mc'), true);"
      "document.getElementById('outer')"
      "  .addEventListener('click', tag('Ob'), false);"
      "document.getElementById('mid')"
      "  .addEventListener('click', tag('Mb'), false);"
      "document.getElementById('btn')"
      "  .addEventListener('click', tag('T'));"
      "</script>",
      10);
  B->loadPage("index.html");
  B->runToQuiescence();
  Element *Btn = B->mainWindow()->document().getElementById("btn");
  B->userClick(Btn);
  B->userClick(Btn);
  B->runToQuiescence();
  EXPECT_EQ(global("log"), "OcMcTMbObOcMcTMbOb");
  // Handler executions of one dispatch are chained, and the two
  // dispatches are ordered by rule 9: no race may involve two handler
  // operations. (A race between the *installing script* and a handler is
  // correct - the user could click before the listeners attach.)
  for (const Race &R : D->races()) {
    const Operation &First = B->hb().operation(R.First.Op);
    const Operation &Second = B->hb().operation(R.Second.Op);
    EXPECT_FALSE(First.Kind == OperationKind::EventHandler &&
                 Second.Kind == OperationKind::EventHandler)
        << describeRace(R, B->hb());
  }
}

TEST_F(IntegrationTest, InlineDispatchOrdersSubsequentCode) {
  // Appendix A splitting: code after el.click() is ordered after the
  // dispatched handlers, so their shared accesses do not race.
  B->network().addResource(
      "index.html",
      "<button id=\"b\"></button>"
      "<script>"
      "var shared = 0;"
      "document.getElementById('b').onclick ="
      "  function() { shared = 1; };"
      "document.getElementById('b').click();"
      "var after = shared;"
      "</script>",
      10);
  B->loadPage("index.html");
  B->runToQuiescence();
  EXPECT_EQ(global("after"), "1");
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    EXPECT_FALSE(Loc && Loc->Name == "shared")
        << describeRace(R, B->hb());
  }
}

TEST_F(IntegrationTest, RemoveChildRaces) {
  // Element removal is a write (Sec. 4.2): a timer-driven removal races
  // with a user click reading the element.
  B->network().addResource(
      "index.html",
      "<div id=\"victim\"></div>"
      "<a id=\"peek\" href=\"javascript:void(document.getElementById("
      "'victim'))\">peek</a>"
      "<script>"
      "setTimeout(function() {"
      "  var v = document.getElementById('victim');"
      "  if (v != null) { document.body.removeChild(v); }"
      "}, 30);"
      "</script>",
      10);
  B->loadPage("index.html");
  B->runToQuiescence();
  B->userClick(B->mainWindow()->document().getElementById("peek"));
  B->runToQuiescence();
  bool Found = false;
  for (const Race &R : D->races()) {
    const auto *Loc = std::get_if<HtmlElemLoc>(&R.Loc);
    if (R.Kind == RaceKind::Html && Loc && Loc->Key == "victim")
      Found = true;
  }
  EXPECT_TRUE(Found) << describeRaces(D->races(), B->hb());
}

TEST_F(IntegrationTest, ManyOperationsScale) {
  // A page generating thousands of operations stays fast and sound.
  std::string Html = "<script>var total = 0;</script>";
  for (int I = 0; I < 200; ++I)
    Html += "<div id=\"d" + std::to_string(I) + "\"></div>"
            "<script>total += 1;</script>";
  B->network().addResource("index.html", Html, 10);
  B->loadPage("index.html");
  B->runToQuiescence();
  EXPECT_EQ(global("total"), "200");
  EXPECT_GT(B->hb().numOperations(), 400u);
  EXPECT_TRUE(D->races().empty()); // Fully parse-chain ordered.
}

TEST_F(IntegrationTest, StyleAttributeParsing) {
  B->network().addResource(
      "index.html",
      "<div id=\"s\" style=\"display: none; color: red\"></div>"
      "<script>"
      "var d = document.getElementById('s');"
      "var before = d.style.display + '/' + d.style.color;"
      "d.style.display = 'block';"
      "var after = d.style.display;"
      "</script>",
      10);
  B->loadPage("index.html");
  B->runToQuiescence();
  EXPECT_EQ(global("before"), "none/red");
  EXPECT_EQ(global("after"), "block");
}

} // namespace

//===- tests/eventloop_test.cpp - event loop and network tests ---------------===//

#include "runtime/EventLoop.h"
#include "runtime/Network.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::rt;

namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop L;
  std::vector<int> Order;
  L.scheduleAt(300, [&] { Order.push_back(3); });
  L.scheduleAt(100, [&] { Order.push_back(1); });
  L.scheduleAt(200, [&] { Order.push_back(2); });
  L.runUntilIdle();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(L.now(), 300u);
}

TEST(EventLoopTest, FifoForEqualTimes) {
  EventLoop L;
  std::vector<int> Order;
  for (int I = 0; I < 5; ++I)
    L.scheduleAt(100, [&Order, I] { Order.push_back(I); });
  L.runUntilIdle();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, TasksCanScheduleTasks) {
  EventLoop L;
  int Fired = 0;
  L.scheduleAt(10, [&] {
    ++Fired;
    L.scheduleAfter(5, [&] { ++Fired; });
  });
  L.runUntilIdle();
  EXPECT_EQ(Fired, 2);
  EXPECT_EQ(L.now(), 15u);
}

TEST(EventLoopTest, Cancel) {
  EventLoop L;
  bool Ran = false;
  auto Id = L.scheduleAt(10, [&] { Ran = true; });
  EXPECT_EQ(L.pendingTasks(), 1u);
  EXPECT_TRUE(L.cancel(Id));
  EXPECT_EQ(L.pendingTasks(), 0u);
  L.runUntilIdle();
  EXPECT_FALSE(Ran);
  EXPECT_FALSE(L.cancel(Id)); // Double-cancel fails.
}

TEST(EventLoopTest, PastTimesClampToNow) {
  EventLoop L;
  L.scheduleAt(100, [] {});
  L.runUntilIdle();
  uint64_t Before = L.now();
  bool Ran = false;
  L.scheduleAt(5, [&] { Ran = true; }); // In the past.
  L.runUntilIdle();
  EXPECT_TRUE(Ran);
  EXPECT_EQ(L.now(), Before);
}

TEST(EventLoopTest, TaskLimitStopsRunaway) {
  EventLoop L;
  L.setTaskLimit(50);
  std::function<void()> Loop = [&] { L.scheduleAfter(1, Loop); };
  L.scheduleAfter(1, Loop);
  size_t Ran = L.runUntilIdle();
  EXPECT_EQ(Ran, 50u);
}

TEST(NetworkTest, DeliversBodyAfterLatency) {
  EventLoop L;
  NetworkSimulator Net(L, 1);
  Net.addResource("a.js", "var x = 1;", 500);
  FetchResult Got;
  Net.fetch("a.js", [&](const FetchResult &R) { Got = R; });
  L.runUntilIdle();
  EXPECT_TRUE(Got.Ok);
  EXPECT_EQ(Got.Body, "var x = 1;");
  EXPECT_EQ(L.now(), 500u);
}

TEST(NetworkTest, MissingResourceFails) {
  EventLoop L;
  NetworkSimulator Net(L, 1);
  FetchResult Got;
  Got.Ok = true;
  Net.fetch("missing.js", [&](const FetchResult &R) { Got = R; });
  L.runUntilIdle();
  EXPECT_FALSE(Got.Ok);
}

TEST(NetworkTest, JitterWithinBoundsAndDeterministic) {
  EventLoop L1;
  NetworkSimulator Net1(L1, 42);
  Net1.addResourceWithJitter("a.js", "x", 100, 1000);
  VirtualTime T1 = 0;
  Net1.fetch("a.js", [&](const FetchResult &) { T1 = L1.now(); });
  L1.runUntilIdle();
  EXPECT_GE(T1, 100u);
  EXPECT_LE(T1, 1000u);

  EventLoop L2;
  NetworkSimulator Net2(L2, 42);
  Net2.addResourceWithJitter("a.js", "x", 100, 1000);
  VirtualTime T2 = 0;
  Net2.fetch("a.js", [&](const FetchResult &) { T2 = L2.now(); });
  L2.runUntilIdle();
  EXPECT_EQ(T1, T2); // Same seed, same latency.
}

TEST(NetworkTest, LatencyOverride) {
  EventLoop L;
  NetworkSimulator Net(L, 1);
  Net.addResource("a.js", "x", 500);
  Net.overrideLatency("a.js", 7);
  VirtualTime T = 0;
  Net.fetch("a.js", [&](const FetchResult &) { T = L.now(); });
  L.runUntilIdle();
  EXPECT_EQ(T, 7u);
  Net.clearOverrides();
  Net.fetch("a.js", [&](const FetchResult &) { T = L.now(); });
  L.runUntilIdle();
  EXPECT_EQ(T, 507u);
}

TEST(NetworkTest, ConcurrentFetchOrderFollowsLatency) {
  EventLoop L;
  NetworkSimulator Net(L, 1);
  Net.addResource("slow.js", "s", 1000);
  Net.addResource("fast.js", "f", 10);
  std::vector<std::string> Order;
  Net.fetch("slow.js", [&](const FetchResult &R) { Order.push_back(R.Url); });
  Net.fetch("fast.js", [&](const FetchResult &R) { Order.push_back(R.Url); });
  L.runUntilIdle();
  EXPECT_EQ(Order, (std::vector<std::string>{"fast.js", "slow.js"}));
}

} // namespace

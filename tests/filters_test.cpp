//===- tests/filters_test.cpp - Sec. 5.3 filter unit tests ---------------------===//

#include "detect/Filters.h"
#include "detect/Report.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::detect;

namespace {

Race makeRace(RaceKind Kind, Location Loc, AccessOrigin FirstOrigin,
              AccessOrigin SecondOrigin, bool GuardedWrite = false) {
  Race R;
  R.Kind = Kind;
  R.Loc = Loc;
  R.First.Kind = AccessKind::Write;
  R.First.Origin = FirstOrigin;
  R.First.Op = 1;
  R.Second.Kind = AccessKind::Read;
  R.Second.Origin = SecondOrigin;
  R.Second.Op = 2;
  R.WriteHadPriorReadInOp = GuardedWrite;
  return R;
}

Race varRace(AccessOrigin First, AccessOrigin Second,
             bool Guarded = false) {
  return makeRace(RaceKind::Variable, JSVarLoc{domContainerId(7), "value"},
                  First, Second, Guarded);
}

Race dispatchRace(NodeId Target, const char *Type) {
  return makeRace(RaceKind::EventDispatch,
                  EventHandlerLoc{Target, 0, Type, 0},
                  AccessOrigin::HandlerInstall, AccessOrigin::HandlerFire);
}

TEST(FormFilterTest, KeepsFormFieldRaces) {
  std::vector<Race> Races = {
      varRace(AccessOrigin::FormFieldWrite, AccessOrigin::UserInput)};
  EXPECT_EQ(filterFormRaces(Races).size(), 1u);
}

TEST(FormFilterTest, DropsPlainVariableRaces) {
  std::vector<Race> Races = {
      varRace(AccessOrigin::Plain, AccessOrigin::Plain)};
  EXPECT_TRUE(filterFormRaces(Races).empty());
}

TEST(FormFilterTest, DropsGuardedWrites) {
  std::vector<Race> Races = {varRace(AccessOrigin::FormFieldWrite,
                                     AccessOrigin::UserInput,
                                     /*Guarded=*/true)};
  EXPECT_TRUE(filterFormRaces(Races).empty());
}

TEST(FormFilterTest, PassesNonVariableKindsThrough) {
  std::vector<Race> Races = {
      makeRace(RaceKind::Html,
               HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "a"},
               AccessOrigin::ElemInsert, AccessOrigin::ElemLookup),
      makeRace(RaceKind::Function, JSVarLoc{0, "f"},
               AccessOrigin::FunctionDecl, AccessOrigin::FunctionCall),
      dispatchRace(4, "load"),
  };
  EXPECT_EQ(filterFormRaces(Races).size(), 3u);
}

TEST(FormFilterTest, InvolvesFormFieldPredicate) {
  EXPECT_TRUE(involvesFormField(
      varRace(AccessOrigin::FormFieldRead, AccessOrigin::Plain)));
  EXPECT_TRUE(involvesFormField(
      varRace(AccessOrigin::Plain, AccessOrigin::UserInput)));
  EXPECT_FALSE(involvesFormField(
      varRace(AccessOrigin::Plain, AccessOrigin::Plain)));
}

TEST(SingleDispatchFilterTest, KeepsSingleDispatchEvents) {
  std::vector<Race> Races = {dispatchRace(4, "load")};
  auto Counts = [](const EventHandlerLoc &) { return 1; };
  EXPECT_EQ(filterSingleDispatch(Races, Counts).size(), 1u);
}

TEST(SingleDispatchFilterTest, DropsMultiDispatchEvents) {
  std::vector<Race> Races = {dispatchRace(4, "mouseover")};
  auto Counts = [](const EventHandlerLoc &) { return 3; };
  EXPECT_TRUE(filterSingleDispatch(Races, Counts).empty());
}

TEST(SingleDispatchFilterTest, CountsKeyedPerLocation) {
  std::vector<Race> Races = {dispatchRace(4, "load"),
                             dispatchRace(5, "mouseover")};
  auto Counts = [](const EventHandlerLoc &Loc) {
    return Loc.EventType == "load" ? 1 : 2;
  };
  auto Kept = filterSingleDispatch(Races, Counts);
  ASSERT_EQ(Kept.size(), 1u);
  EXPECT_EQ(std::get<EventHandlerLoc>(Kept[0].Loc).EventType, "load");
}

TEST(SingleDispatchFilterTest, PassesOtherKindsThrough) {
  std::vector<Race> Races = {
      varRace(AccessOrigin::Plain, AccessOrigin::Plain)};
  auto Counts = [](const EventHandlerLoc &) { return 100; };
  EXPECT_EQ(filterSingleDispatch(Races, Counts).size(), 1u);
}

TEST(CombinedFilterTest, AppliesBoth) {
  std::vector<Race> Races = {
      varRace(AccessOrigin::Plain, AccessOrigin::Plain),   // Dropped.
      varRace(AccessOrigin::FormFieldWrite,
              AccessOrigin::UserInput),                    // Kept.
      dispatchRace(4, "load"),                             // Kept (1x).
      dispatchRace(5, "mouseover"),                        // Dropped (2x).
      makeRace(RaceKind::Html,
               HtmlElemLoc{1, ElemKeyKind::ById, InvalidNodeId, "a"},
               AccessOrigin::ElemInsert,
               AccessOrigin::ElemLookup),                  // Kept.
  };
  auto Counts = [](const EventHandlerLoc &Loc) {
    return Loc.EventType == "load" ? 1 : 2;
  };
  auto Kept = applyPaperFilters(Races, Counts);
  RaceTally T = tally(Kept);
  EXPECT_EQ(T.Variable, 1u);
  EXPECT_EQ(T.EventDispatch, 1u);
  EXPECT_EQ(T.Html, 1u);
  EXPECT_EQ(T.total(), 3u);
}

TEST(ReportTest, TallyCounts) {
  std::vector<Race> Races = {
      varRace(AccessOrigin::Plain, AccessOrigin::Plain),
      varRace(AccessOrigin::Plain, AccessOrigin::Plain),
      dispatchRace(4, "load"),
  };
  RaceTally T = tally(Races);
  EXPECT_EQ(T.Variable, 2u);
  EXPECT_EQ(T.EventDispatch, 1u);
  EXPECT_EQ(T.Html, 0u);
  EXPECT_EQ(T.total(), 3u);
}

TEST(ReportTest, SummaryLine) {
  std::vector<Race> Races = {dispatchRace(4, "load")};
  EXPECT_EQ(summaryLine(Races),
            "html=0 function=0 variable=0 event-dispatch=1 total=1");
}

TEST(ReportTest, DescribeRaceMentionsOperations) {
  HbGraph Hb;
  Operation Meta;
  Meta.Kind = OperationKind::ExecuteScript;
  Meta.Label = "exe <script src=hints.js>";
  OpId A = Hb.addOperation(Meta);
  Meta.Kind = OperationKind::UserAction;
  Meta.Label = "user types";
  OpId B = Hb.addOperation(Meta);
  Race R = varRace(AccessOrigin::FormFieldWrite, AccessOrigin::UserInput);
  R.First.Op = A;
  R.Second.Op = B;
  std::string Text = describeRace(R, Hb);
  EXPECT_NE(Text.find("variable race"), std::string::npos);
  EXPECT_NE(Text.find("hints.js"), std::string::npos);
  EXPECT_NE(Text.find("user types"), std::string::npos);
  EXPECT_NE(Text.find("node7.value"), std::string::npos);
}

TEST(ReportTest, GuardNoteRendered) {
  HbGraph Hb;
  OpId A = Hb.addOperation(Operation());
  OpId B = Hb.addOperation(Operation());
  Race R = varRace(AccessOrigin::FormFieldWrite, AccessOrigin::UserInput,
                   /*Guarded=*/true);
  R.First.Op = A;
  R.Second.Op = B;
  EXPECT_NE(describeRace(R, Hb).find("guard"), std::string::npos);
}

TEST(FormFilterTest, EmptyRaceListStaysEmpty) {
  std::vector<Race> None;
  EXPECT_TRUE(filterFormRaces(None).empty());
  auto Counts = [](const EventHandlerLoc &) { return 1; };
  EXPECT_TRUE(filterSingleDispatch(None, Counts).empty());
  EXPECT_TRUE(applyPaperFilters(None, Counts).empty());
}

TEST(FormFilterTest, VariableRaceWithoutFormFieldIsDropped) {
  // A variable race on a plain global (no DOM container, no form-origin
  // access on either side) never involves a form field.
  Race Plain = makeRace(RaceKind::Variable, JSVarLoc{0, "counter"},
                        AccessOrigin::Plain, AccessOrigin::Plain);
  EXPECT_FALSE(involvesFormField(Plain));
  EXPECT_TRUE(filterFormRaces({Plain}).empty());
}

TEST(FormFilterTest, GuardedWriteDropsOnlyTheGuardedRace) {
  // The guard heuristic (WriteHadPriorReadInOp) must interact with the
  // form filter per-race: an unguarded form race on the same list
  // survives while the guarded one is dropped.
  std::vector<Race> Races = {
      varRace(AccessOrigin::FormFieldWrite, AccessOrigin::UserInput,
              /*Guarded=*/true),
      varRace(AccessOrigin::FormFieldWrite, AccessOrigin::UserInput,
              /*Guarded=*/false),
  };
  auto Kept = filterFormRaces(Races);
  ASSERT_EQ(Kept.size(), 1u);
  EXPECT_FALSE(Kept[0].WriteHadPriorReadInOp);
}

TEST(FormFilterTest, GuardOnNonFormVariableRaceDoesNotRescueIt) {
  // Guarded or not, a non-form variable race is outside the filter's
  // keep-set; the guard bit must not change that.
  Race R = varRace(AccessOrigin::Plain, AccessOrigin::Plain,
                   /*Guarded=*/true);
  EXPECT_TRUE(filterFormRaces({R}).empty());
}

TEST(FormFilterTest, GuardedNonVariableKindsPassThrough) {
  // Only variable races consult the guard; an event-dispatch race with
  // the bit set (however it got there) still passes the form filter.
  Race R = dispatchRace(4, "load");
  R.WriteHadPriorReadInOp = true;
  EXPECT_EQ(filterFormRaces({R}).size(), 1u);
}

TEST(ReportTest, RaceKindNames) {
  EXPECT_STREQ(toString(RaceKind::Variable), "variable");
  EXPECT_STREQ(toString(RaceKind::Html), "html");
  EXPECT_STREQ(toString(RaceKind::Function), "function");
  EXPECT_STREQ(toString(RaceKind::EventDispatch), "event-dispatch");
}

} // namespace

//===- tests/triage_test.cpp - Triage engine tests --------------------------===//
//
// The triage engine's contract:
//
//  * Structural signatures are invariant under the seed, the site layout
//    (pattern uniquifier suffixes), and the trace encoding (WRT1 vs
//    WRT2) - the same source pattern signs identically everywhere.
//  * Suppression files round-trip through parse/serialize, reject
//    malformed input with line-numbered diagnostics, and drop races
//    without silent attrition (counts land in FilterCounts, per-entry
//    hits let unmatched entries warn).
//  * Batch ingest emits a byte-identical report at every job count.
//
//===----------------------------------------------------------------------===//

#include "detect/TraceReplay.h"
#include "obs/Json.h"
#include "sites/Corpus.h"
#include "sites/CorpusRunner.h"
#include "triage/Batch.h"
#include "triage/Signature.h"
#include "triage/Suppression.h"
#include "webracer/Session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace wr;
namespace fs = std::filesystem;

namespace {

/// Sorted signature texts of one site run (the race "set" modulo ids).
std::vector<std::string> signatureTexts(const sites::SiteRunStats &S) {
  std::vector<std::string> Texts;
  for (const triage::RaceSignature &Sig : S.Signatures)
    Texts.push_back(Sig.text());
  std::sort(Texts.begin(), Texts.end());
  return Texts;
}

sites::GeneratedSite patternSite(const std::string &Name,
                                 std::vector<sites::PatternInstance> Ps) {
  return sites::buildSite({Name, std::move(Ps)});
}

TEST(SignatureTest, NormalizeSourcePatternFoldsDigitRuns) {
  EXPECT_EQ(triage::normalizeSourcePattern("dw_p3"), "dw_p#");
  EXPECT_EQ(triage::normalizeSourcePattern("menu_p12_0"), "menu_p#_#");
  EXPECT_EQ(triage::normalizeSourcePattern("plain"), "plain");
  EXPECT_EQ(triage::normalizeSourcePattern("42"), "#");
  EXPECT_EQ(triage::normalizeSourcePattern(""), "");
}

TEST(SignatureTest, InvariantAcrossSeeds) {
  // The same site at different seeds schedules differently (network
  // jitter, exploration order) but must produce the same signature set
  // for the seeded pattern.
  sites::GeneratedSite Site = patternSite(
      "sig-seeds", {{sites::PatternKind::FormValueHarmful, 1},
                    {sites::PatternKind::HtmlLookupHarmful, 1}});
  webracer::SessionOptions Base;
  sites::SiteRunStats A = sites::runSite(Site, Base, 7);
  sites::SiteRunStats B = sites::runSite(Site, Base, 1234567);
  ASSERT_FALSE(A.Signatures.empty());
  EXPECT_EQ(signatureTexts(A), signatureTexts(B));
}

TEST(SignatureTest, InvariantAcrossSiteLayouts) {
  // The corpus uniquifies symbols per pattern slot ("_p<N>"), so the
  // same pattern embedded at different positions gets different source
  // names. Digit folding must cancel that: a site with the pattern in
  // slot 0 and one with it behind other patterns sign identically for
  // the shared patterns.
  sites::GeneratedSite First = patternSite(
      "sig-layout-a", {{sites::PatternKind::FormValueHarmful, 1},
                       {sites::PatternKind::HtmlLookupHarmful, 1}});
  sites::GeneratedSite Second = patternSite(
      "sig-layout-b", {{sites::PatternKind::HtmlLookupHarmful, 1},
                       {sites::PatternKind::FormValueHarmful, 1}});
  webracer::SessionOptions Base;
  sites::SiteRunStats A = sites::runSite(First, Base, 99);
  sites::SiteRunStats B = sites::runSite(Second, Base, 99);
  ASSERT_FALSE(A.Signatures.empty());
  EXPECT_EQ(signatureTexts(A), signatureTexts(B));
}

TEST(SignatureTest, InvariantAcrossTraceEncodings) {
  // One execution, two encodings: the WRT2 bytes and the legacy WRT1
  // bytes of the same trace must replay to byte-identical signatures.
  sites::GeneratedSite Site = patternSite(
      "sig-wrt", {{sites::PatternKind::FormValueHarmful, 1}});
  webracer::SessionOptions Opts;
  Opts.RecordTrace = true;
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  for (const sites::SiteResource &R : Site.Resources)
    S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
  (void)S.run(Site.IndexUrl);
  ASSERT_NE(S.trace(), nullptr);

  auto SignedReplay = [](const std::string &Bytes) {
    TraceLog Log;
    std::string Error;
    EXPECT_TRUE(TraceLog::deserialize(Bytes, Log, &Error)) << Error;
    detect::ReplayResult R = detect::replayTrace(Log);
    std::vector<std::string> Texts;
    for (const detect::Race &Race : R.FilteredRaces)
      Texts.push_back(triage::computeSignature(Race, R.Hb).text());
    std::sort(Texts.begin(), Texts.end());
    return Texts;
  };
  std::vector<std::string> Wrt2 = SignedReplay(S.trace()->serialize());
  std::vector<std::string> Wrt1 =
      SignedReplay(S.trace()->serializeLegacyWrt1());
  ASSERT_FALSE(Wrt2.empty());
  EXPECT_EQ(Wrt2, Wrt1);
}

TEST(SignatureTest, HashAndIdAreStableFunctionsOfText) {
  triage::RaceSignature A{"variable", "var global.x", "r:... + w:...",
                          "timeout + -"};
  triage::RaceSignature B = A;
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_EQ(A.id(), B.id());
  EXPECT_EQ(A.id().substr(0, 4), "sig-");
  EXPECT_EQ(A.id().size(), 4u + 16u);
  B.Location = "var global.y";
  EXPECT_NE(A.hash(), B.hash());
}

TEST(GlobTest, Matching) {
  EXPECT_TRUE(triage::globMatch("*", ""));
  EXPECT_TRUE(triage::globMatch("*", "anything"));
  EXPECT_TRUE(triage::globMatch("var global.menu*", "var global.menu_p#"));
  EXPECT_FALSE(triage::globMatch("var global.menu*", "var dom.menu"));
  EXPECT_TRUE(triage::globMatch("a?c", "abc"));
  EXPECT_FALSE(triage::globMatch("a?c", "ac"));
  EXPECT_TRUE(triage::globMatch("*.value", "var node#.value"));
  EXPECT_FALSE(triage::globMatch("", "x"));
  EXPECT_TRUE(triage::globMatch("", ""));
}

TEST(SuppressionTest, ParseSerializeRoundTrip) {
  const char *Text = "# comment\n"
                     "{\n"
                     "  name: menu warm-up\n"
                     "  kind: html\n"
                     "  location: elem #menu*\n"
                     "}\n"
                     "\n"
                     "{\n"
                     "  name: all variable noise\n"
                     "  kind: variable\n"
                     "}\n";
  triage::SuppressionFile File;
  std::string Error;
  ASSERT_TRUE(triage::SuppressionFile::parse(Text, File, Error)) << Error;
  ASSERT_EQ(File.entries().size(), 2u);
  EXPECT_EQ(File.entries()[0].Name, "menu warm-up");
  EXPECT_EQ(File.entries()[0].Kind, "html");
  EXPECT_EQ(File.entries()[0].Location, "elem #menu*");
  EXPECT_EQ(File.entries()[0].Access, "*"); // Omitted fields default.
  EXPECT_EQ(File.entries()[1].Context, "*");

  triage::SuppressionFile Again;
  ASSERT_TRUE(
      triage::SuppressionFile::parse(File.serialize(), Again, Error))
      << Error;
  EXPECT_EQ(File.entries(), Again.entries());
  EXPECT_EQ(File.serialize(), Again.serialize());
}

TEST(SuppressionTest, ParseErrorsNameTheLine) {
  triage::SuppressionFile File;
  std::string Error;
  EXPECT_FALSE(
      triage::SuppressionFile::parse("{\n  kind: html\n}\n", File, Error));
  EXPECT_NE(Error.find("name"), std::string::npos);
  EXPECT_FALSE(triage::SuppressionFile::parse(
      "{\n  name: x\n  bogus: y\n}\n", File, Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
  EXPECT_FALSE(
      triage::SuppressionFile::parse("{\n  name: x\n", File, Error));
  EXPECT_NE(Error.find("unterminated"), std::string::npos) << Error;
  EXPECT_FALSE(triage::SuppressionFile::parse("junk\n", File, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos) << Error;
}

TEST(SuppressionTest, ApplyCountsAttritionAndHits) {
  sites::GeneratedSite Site = patternSite(
      "sup-apply", {{sites::PatternKind::FormValueHarmful, 1},
                    {sites::PatternKind::HtmlLookupHarmful, 1}});
  webracer::SessionOptions Base;
  sites::SiteRunStats Run = sites::runSite(Site, Base, 5);
  ASSERT_GE(Run.FilteredRaces.size(), 2u);
  size_t Variables = 0;
  for (const triage::RaceSignature &Sig : Run.Signatures)
    Variables += Sig.Kind == "variable";
  ASSERT_GT(Variables, 0u);

  triage::SuppressionFile File;
  File.add({"all variable races", "variable", "*", "*", "*"});
  File.add({"matches nothing", "event-dispatch", "*", "*", "*"});

  // Recompute against a fresh offline graph so the test owns the HB
  // graph lifetime (the site's browser is gone).
  webracer::SessionOptions Opts;
  Opts.RecordTrace = true;
  Opts.Suppressions = &File;
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  for (const sites::SiteResource &R : Site.Resources)
    S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
  webracer::SessionResult Result = S.run(Site.IndexUrl);

  // The suppressed drops are visible, never silent: attrition records
  // them and the kept tally shrank accordingly.
  EXPECT_EQ(Result.Stats.Attrition.Suppressed, Variables);
  EXPECT_EQ(Result.Stats.Attrition.Kept, Result.FilteredRaces.size());
  EXPECT_EQ(Result.Stats.Filtered.total(), Result.FilteredRaces.size());
  for (const detect::Race &R : Result.FilteredRaces)
    EXPECT_NE(R.Kind, detect::RaceKind::Variable);
  ASSERT_EQ(Result.SuppressionHits.size(), 2u);
  EXPECT_EQ(Result.SuppressionHits[0], Variables);
  EXPECT_EQ(Result.SuppressionHits[1], 0u); // The unmatched entry.
}

TEST(SuppressionTest, SuppressedKeyOmittedWhenZero) {
  // Golden-file compatibility: runs without suppressions serialize
  // exactly as before the triage engine existed.
  obs::FilterAttrition A;
  A.Input = 3;
  A.Kept = 3;
  std::string NoSup = obs::writeJson(A.toJson());
  EXPECT_EQ(NoSup.find("suppressed"), std::string::npos);
  A.Suppressed = 1;
  EXPECT_NE(obs::writeJson(A.toJson()).find("suppressed"),
            std::string::npos);
}

/// Records \p Count traces of \p Site (varying seeds) into \p Dir.
void recordTraces(const sites::GeneratedSite &Site, const fs::path &Dir,
                  unsigned Count) {
  fs::create_directories(Dir);
  for (unsigned I = 0; I < Count; ++I) {
    webracer::SessionOptions Opts;
    Opts.RecordTrace = true;
    Opts.Browser.Seed = 100 + I;
    webracer::Session S(Opts);
    S.network().addResource(Site.IndexUrl, Site.Html, 10);
    for (const sites::SiteResource &R : Site.Resources)
      S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                        R.MaxLatencyUs);
    (void)S.run(Site.IndexUrl);
    std::ofstream Out(Dir / ("t" + std::to_string(I) + ".wrt"),
                      std::ios::binary | std::ios::trunc);
    std::string Bytes = S.trace()->serialize();
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    ASSERT_TRUE(Out.good());
  }
}

TEST(BatchTest, ByteIdenticalAcrossJobCountsAndCountsReconcile) {
  fs::path Dir =
      fs::temp_directory_path() / "wr_triage_test_batch";
  fs::remove_all(Dir);
  sites::GeneratedSite Site = patternSite(
      "batch-site", {{sites::PatternKind::FormValueHarmful, 1}});
  recordTraces(Site, Dir, 6);

  std::vector<std::string> Paths;
  std::string Error;
  ASSERT_TRUE(triage::listTraceFiles(Dir.string(), Paths, Error)) << Error;
  ASSERT_EQ(Paths.size(), 6u);
  EXPECT_TRUE(std::is_sorted(Paths.begin(), Paths.end()));

  std::string Baseline;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    triage::BatchOptions Opts;
    Opts.Jobs = Jobs;
    triage::BatchResult R = triage::runBatch(Paths, Opts);
    EXPECT_EQ(R.TracesOk, 6u);
    EXPECT_EQ(R.TracesFailed, 0u);
    // Occurrence counts must sum to the per-trace totals.
    uint64_t PerTrace = 0;
    for (const triage::TraceIngest &In : R.Traces)
      PerTrace += In.Kept.size();
    uint64_t Grouped = 0;
    for (const triage::SignatureGroup &G : R.Groups)
      Grouped += G.Occurrences;
    EXPECT_EQ(Grouped, PerTrace);
    EXPECT_EQ(Grouped, R.TotalKept);
    EXPECT_GT(R.TotalKept, 0u);
    std::string Doc =
        obs::writeJson(triage::buildBatchReport("batch", R));
    if (Baseline.empty())
      Baseline = Doc;
    else
      EXPECT_EQ(Doc, Baseline) << "report differs at jobs=" << Jobs;
  }
  fs::remove_all(Dir);
}

TEST(BatchTest, UnreadableTraceIsReportedNotSilent) {
  fs::path Dir =
      fs::temp_directory_path() / "wr_triage_test_badtrace";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  std::ofstream(Dir / "bad.wrt", std::ios::binary) << "not a trace";
  std::vector<std::string> Paths;
  std::string Error;
  ASSERT_TRUE(triage::listTraceFiles(Dir.string(), Paths, Error)) << Error;
  triage::BatchResult R = triage::runBatch(Paths, triage::BatchOptions());
  EXPECT_EQ(R.TracesFailed, 1u);
  ASSERT_EQ(R.Traces.size(), 1u);
  EXPECT_FALSE(R.Traces[0].Ok);
  EXPECT_FALSE(R.Traces[0].Error.empty());
  obs::Json Doc = triage::buildBatchReport("bad", R);
  ASSERT_NE(Doc.find("traces"), nullptr);
  EXPECT_EQ(Doc.find("traces")->find("failed")->asInt(), 1);
  ASSERT_NE(Doc.find("errors"), nullptr);
  fs::remove_all(Dir);
}

TEST(BatchTest, SuppressionRemovesGroupAndSurfacesInCounts) {
  fs::path Dir = fs::temp_directory_path() / "wr_triage_test_sup";
  fs::remove_all(Dir);
  sites::GeneratedSite Site = patternSite(
      "batch-sup", {{sites::PatternKind::FormValueHarmful, 1},
                    {sites::PatternKind::HtmlLookupHarmful, 1}});
  recordTraces(Site, Dir, 3);
  std::vector<std::string> Paths;
  std::string Error;
  ASSERT_TRUE(triage::listTraceFiles(Dir.string(), Paths, Error)) << Error;

  triage::BatchResult Plain =
      triage::runBatch(Paths, triage::BatchOptions());
  ASSERT_FALSE(Plain.Groups.empty());
  const triage::SignatureGroup &Victim = Plain.Groups.front();

  triage::SuppressionFile File;
  File.add({"victim", Victim.Sig.Kind, Victim.Sig.Location,
            Victim.Sig.Access, Victim.Sig.Context});
  File.add({"stale", "no-such-kind", "*", "*", "*"});
  triage::BatchOptions Opts;
  Opts.Suppressions = &File;
  triage::BatchResult R = triage::runBatch(Paths, Opts);

  for (const triage::SignatureGroup &G : R.Groups)
    EXPECT_FALSE(G.Sig == Victim.Sig) << "suppressed group survived";
  EXPECT_EQ(R.TotalSuppressed, Victim.Occurrences);
  EXPECT_EQ(R.TotalKept + R.TotalSuppressed, Plain.TotalKept);
  ASSERT_EQ(R.SuppressionHits.size(), 2u);
  EXPECT_EQ(R.SuppressionHits[0], Victim.Occurrences);
  EXPECT_EQ(R.SuppressionHits[1], 0u);
  ASSERT_EQ(R.UnmatchedSuppressions.size(), 1u);
  EXPECT_EQ(R.UnmatchedSuppressions[0], "stale");
  // The aggregate's attrition carries the drops (never silent).
  EXPECT_EQ(R.Aggregate.Attrition.Suppressed, Victim.Occurrences);
  fs::remove_all(Dir);
}

} // namespace

//===- tests/session_test.cpp - top-level Session API tests --------------------===//

#include "webracer/Session.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::webracer;

namespace {

void registerFig1(rt::NetworkSimulator &Net) {
  Net.addResource("index.html",
                  "<script>x = 1;</script>"
                  "<iframe src=\"a.html\"></iframe>"
                  "<iframe src=\"b.html\"></iframe>",
                  10);
  Net.addResource("a.html", "<script>x = 2;</script>", 1000);
  Net.addResource("b.html", "<script>alert(x);</script>", 2000);
}

TEST(SessionTest, EndToEndRun) {
  Session S{SessionOptions()};
  registerFig1(S.network());
  SessionResult R = S.run("index.html");
  EXPECT_EQ(R.RawRaces.size(), 1u);
  EXPECT_GT(R.Stats.Operations, 10u);
  EXPECT_GT(R.Stats.HbEdges, 10u);
  // The default engine answers epoch probes, so no CHC question ever
  // escalates to a generic oracle query.
  EXPECT_EQ(R.Stats.ChcQueries, 0u);
  EXPECT_GT(R.Stats.EpochHits, 0u);
  EXPECT_GT(R.Stats.ReadsSeen, 0u);
  EXPECT_EQ(R.Stats.EpochReads, R.Stats.ReadsSeen);
  ASSERT_EQ(R.Alerts.size(), 1u);
  EXPECT_TRUE(R.Crashes.empty());
  EXPECT_TRUE(R.ParseErrors.empty());
}

TEST(SessionTest, VectorClockModeFindsSameRaces) {
  SessionOptions Graph;
  Graph.Detector.Engine = EngineKind::HbDfs; // The paper's DFS graph.
  Session SG(Graph);
  registerFig1(SG.network());
  SessionResult RG = SG.run("index.html");

  SessionOptions Vc; // Default engine: vector-clock happens-before.
  Session SV(Vc);
  registerFig1(SV.network());
  SessionResult RV = SV.run("index.html");

  ASSERT_EQ(RG.RawRaces.size(), RV.RawRaces.size());
  for (size_t I = 0; I < RG.RawRaces.size(); ++I) {
    EXPECT_EQ(RG.RawRaces[I].Kind, RV.RawRaces[I].Kind);
    EXPECT_EQ(RG.RawRaces[I].Loc, RV.RawRaces[I].Loc);
  }
}

TEST(SessionTest, DeterministicAcrossRuns) {
  auto RunOnce = [] {
    Session S{SessionOptions()};
    registerFig1(S.network());
    return S.run("index.html");
  };
  SessionResult A = RunOnce();
  SessionResult B = RunOnce();
  EXPECT_EQ(A.Stats.Operations, B.Stats.Operations);
  EXPECT_EQ(A.Stats.HbEdges, B.Stats.HbEdges);
  ASSERT_EQ(A.RawRaces.size(), B.RawRaces.size());
  for (size_t I = 0; I < A.RawRaces.size(); ++I)
    EXPECT_EQ(A.RawRaces[I].Loc, B.RawRaces[I].Loc);
}

TEST(SessionTest, AutoExploreToggle) {
  auto RunWith = [](bool Explore) {
    SessionOptions Opts;
    Opts.AutoExplore = Explore;
    Session S(Opts);
    S.network().addResource(
        "index.html",
        "<input type=\"text\" id=\"q\" />"
        "<script>document.getElementById('q').value = 'hint';</script>",
        10);
    return S.run("index.html");
  };
  SessionResult Without = RunWith(false);
  SessionResult With = RunWith(true);
  // The Fig. 2 race needs the simulated typing.
  EXPECT_EQ(Without.FilteredRaces.size(), 0u);
  EXPECT_EQ(With.FilteredRaces.size(), 1u);
  EXPECT_EQ(With.Explore.BoxesTyped, 1u);
}

TEST(SessionTest, TraceRecording) {
  SessionOptions Opts;
  Opts.RecordTrace = true;
  Session S(Opts);
  S.network().addResource("index.html", "<script>var x = 1;</script>",
                          10);
  S.run("index.html");
  ASSERT_NE(S.trace(), nullptr);
  EXPECT_GT(S.trace()->events().size(), 5u);
  EXPECT_GT(S.trace()->count(TraceLog::EventKind::MemAccess), 0u);
}

TEST(SessionTest, NoTraceByDefault) {
  Session S{SessionOptions()};
  EXPECT_EQ(S.trace(), nullptr);
}

TEST(SessionTest, ParseErrorsSurface) {
  Session S{SessionOptions()};
  S.network().addResource("index.html",
                          "<script>var = broken syntax(;</script>"
                          "<script>var ok = 1;</script>",
                          10);
  SessionResult R = S.run("index.html");
  EXPECT_EQ(R.ParseErrors.size(), 1u);
  // The broken script is skipped; the page still runs.
  js::Value *V = S.browser().interp().globalEnv()->findOwn("ok");
  ASSERT_NE(V, nullptr);
  EXPECT_DOUBLE_EQ(V->asNumber(), 1);
}

TEST(SessionTest, MissingPageYieldsEmptyRun) {
  Session S{SessionOptions()};
  SessionResult R = S.run("never-registered.html");
  EXPECT_TRUE(R.RawRaces.empty());
  // Window still completes its (empty) load cycle.
  EXPECT_TRUE(S.browser().mainWindow()->loadFired());
}

TEST(SessionTest, DispatchCountsCallback) {
  Session S{SessionOptions()};
  S.network().addResource(
      "index.html",
      "<div id=\"a\" onclick=\"window.n = (window.n || 0) + 1;\"></div>",
      10);
  S.run("index.html");
  Element *A = S.browser().mainWindow()->document().getElementById("a");
  detect::DispatchCountFn Counts = S.dispatchCounts();
  EventHandlerLoc Loc{A->id(), 0, "click", 0};
  EXPECT_EQ(Counts(Loc), 2); // Explorer repeats click twice.
  EventHandlerLoc Never{A->id(), 0, "dblclick", 0};
  EXPECT_EQ(Counts(Never), 0);
}

TEST(SessionTest, HbStrategyDefaultMatchesSessionDefault) {
  // A bare HbGraph and SessionOptions must agree on the default
  // reachability strategy, so code holding a graph outside a session
  // (benches, trace tooling) answers happensBefore() the same way.
  EXPECT_EQ(HbGraph().usesVectorClocks(),
            SessionOptions().Detector.Engine != EngineKind::HbDfs);
}

TEST(SessionTest, ExpectedOperationsHintPreservesResults) {
  // The capacity hint is purely an allocation hint: a hinted session must
  // produce the identical statistics record (races, chains, clock arena
  // bytes) as an unhinted one.
  auto runWith = [](size_t Hint) {
    SessionOptions Opts;
    Opts.ExpectedOperations = Hint;
    Session S{Opts};
    S.network().addResource("index.html",
                            "<script>x = 1;</script>"
                            "<iframe src=\"a.html\"></iframe>"
                            "<iframe src=\"b.html\"></iframe>",
                            10);
    S.network().addResource("a.html", "<script>x = 2;</script>", 1000);
    S.network().addResource("b.html", "<script>alert(x);</script>", 2000);
    return S.run("index.html");
  };
  SessionResult Plain = runWith(0);
  SessionResult Hinted = runWith(4096);
  EXPECT_EQ(Plain.RawRaces.size(), Hinted.RawRaces.size());
  EXPECT_EQ(Plain.Stats.Operations, Hinted.Stats.Operations);
  EXPECT_EQ(Plain.Stats.VcChains, Hinted.Stats.VcChains);
  EXPECT_EQ(Plain.Stats.ClockBytes, Hinted.Stats.ClockBytes);
  EXPECT_EQ(Plain.Stats.SharedClocks, Hinted.Stats.SharedClocks);
  EXPECT_EQ(Plain.Stats.ClockMerges, Hinted.Stats.ClockMerges);
}

} // namespace

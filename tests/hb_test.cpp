//===- tests/hb_test.cpp - happens-before graph tests ------------------------===//

#include "hb/HbGraph.h"

#include <gtest/gtest.h>

using namespace wr;

namespace {

Operation op(const char *Label) {
  Operation O;
  O.Kind = OperationKind::ExecuteScript;
  O.Label = Label;
  return O;
}

TEST(HbGraphTest, DirectEdge) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  G.addEdge(A, B, HbRule::RProgram);
  EXPECT_TRUE(G.happensBefore(A, B));
  EXPECT_FALSE(G.happensBefore(B, A));
  EXPECT_FALSE(G.canHappenConcurrently(A, B));
}

TEST(HbGraphTest, NoEdgeMeansConcurrent) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  EXPECT_FALSE(G.happensBefore(A, B));
  EXPECT_FALSE(G.happensBefore(B, A));
  EXPECT_TRUE(G.canHappenConcurrently(A, B));
}

TEST(HbGraphTest, BottomNeverConcurrent) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  EXPECT_FALSE(G.canHappenConcurrently(InvalidOpId, A));
  EXPECT_FALSE(G.canHappenConcurrently(A, InvalidOpId));
  EXPECT_FALSE(G.canHappenConcurrently(A, A));
}

TEST(HbGraphTest, Transitivity) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  OpId C = G.addOperation(op("c"));
  G.addEdge(A, B, HbRule::RProgram);
  G.addEdge(B, C, HbRule::RProgram);
  EXPECT_TRUE(G.happensBefore(A, C));
  EXPECT_FALSE(G.happensBefore(C, A));
}

TEST(HbGraphTest, Diamond) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  OpId C = G.addOperation(op("c"));
  OpId D = G.addOperation(op("d"));
  G.addEdge(A, B, HbRule::RProgram);
  G.addEdge(A, C, HbRule::RProgram);
  G.addEdge(B, D, HbRule::RProgram);
  G.addEdge(C, D, HbRule::RProgram);
  EXPECT_TRUE(G.happensBefore(A, D));
  EXPECT_TRUE(G.canHappenConcurrently(B, C));
}

TEST(HbGraphTest, DuplicateEdgesIgnored) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  G.addEdge(A, B, HbRule::RProgram);
  G.addEdge(A, B, HbRule::RProgram);
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(HbGraphTest, DfsAndVectorClockAgree) {
  // Random-ish DAG: every op gets edges from some earlier ops.
  HbGraph G;
  const int N = 120;
  std::vector<OpId> Ops;
  for (int I = 0; I < N; ++I) {
    OpId Op2 = G.addOperation(op("n"));
    if (I > 0 && I % 3 != 0)
      G.addEdge(Ops[static_cast<size_t>(I / 2)], Op2, HbRule::RProgram);
    if (I > 4 && I % 5 == 0)
      G.addEdge(Ops[static_cast<size_t>(I - 4)], Op2, HbRule::RProgram);
    Ops.push_back(Op2);
  }
  for (int A = 0; A < N; ++A)
    for (int B = 0; B < N; ++B) {
      OpId OA = Ops[static_cast<size_t>(A)], OB = Ops[static_cast<size_t>(B)];
      EXPECT_EQ(G.reachesDfs(OA, OB), G.reachesVectorClock(OA, OB))
          << "mismatch for " << OA << " -> " << OB;
    }
}

TEST(HbGraphTest, StrategySwitch) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  G.addEdge(A, B, HbRule::RProgram);
  G.setUseVectorClocks(true);
  EXPECT_TRUE(G.usesVectorClocks());
  EXPECT_TRUE(G.happensBefore(A, B));
  G.setUseVectorClocks(false);
  EXPECT_TRUE(G.happensBefore(A, B));
}

TEST(HbGraphTest, ChainDecompositionIsCompact) {
  // A pure chain should use exactly one chain.
  HbGraph G;
  OpId Prev = G.addOperation(op("head"));
  for (int I = 0; I < 50; ++I) {
    OpId Next = G.addOperation(op("link"));
    G.addEdge(Prev, Next, HbRule::RProgram);
    Prev = Next;
  }
  EXPECT_TRUE(G.reachesVectorClock(1, Prev));
  EXPECT_EQ(G.numChains(), 1u);
}

TEST(HbGraphTest, ExplainPath) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  OpId C = G.addOperation(op("c"));
  G.addEdge(A, B, HbRule::R16_SetTimeout);
  G.addEdge(B, C, HbRule::R3_ExeBeforeLoad);
  auto Path = G.explainPath(A, C);
  ASSERT_EQ(Path.size(), 3u);
  EXPECT_EQ(Path[0], A);
  EXPECT_EQ(Path[2], C);
  EXPECT_TRUE(G.explainPath(C, A).empty());
  HbRule Rule;
  ASSERT_TRUE(G.findDirectEdgeRule(A, B, Rule));
  EXPECT_EQ(Rule, HbRule::R16_SetTimeout);
  EXPECT_FALSE(G.findDirectEdgeRule(A, C, Rule));
}

TEST(HbGraphTest, ExplainPathEndpointsAndConsecutiveEdges) {
  // On a diamond with a long tail, any witness path must start at A, end
  // at B, and consist purely of direct edges.
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId L = G.addOperation(op("left"));
  OpId R = G.addOperation(op("right"));
  OpId M = G.addOperation(op("merge"));
  G.addEdge(A, L, HbRule::R1a_ParseOrder);
  G.addEdge(A, R, HbRule::R16_SetTimeout);
  G.addEdge(L, M, HbRule::RProgram);
  G.addEdge(R, M, HbRule::RProgram);
  OpId Prev = M;
  for (int I = 0; I < 10; ++I) {
    OpId Next = G.addOperation(op("tail"));
    G.addEdge(Prev, Next, HbRule::RProgram);
    Prev = Next;
  }
  std::vector<OpId> Path = G.explainPath(A, Prev);
  ASSERT_GE(Path.size(), 2u);
  EXPECT_EQ(Path.front(), A);
  EXPECT_EQ(Path.back(), Prev);
  for (size_t I = 0; I + 1 < Path.size(); ++I) {
    HbRule Rule;
    EXPECT_TRUE(G.findDirectEdgeRule(Path[I], Path[I + 1], Rule))
        << "no direct edge " << Path[I] << " -> " << Path[I + 1];
  }
}

TEST(HbGraphTest, ExplainPathUnreachablePairsAreEmpty) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  OpId C = G.addOperation(op("c"));
  G.addEdge(A, C, HbRule::RProgram);
  G.addEdge(B, C, HbRule::RProgram);
  // A and B are concurrent: no witness either way.
  EXPECT_TRUE(G.explainPath(A, B).empty());
  EXPECT_TRUE(G.explainPath(B, A).empty());
  // Against the flow of edges.
  EXPECT_TRUE(G.explainPath(C, A).empty());
  HbRule Rule;
  EXPECT_FALSE(G.findDirectEdgeRule(A, B, Rule));
  EXPECT_FALSE(G.findDirectEdgeRule(C, A, Rule));
}

TEST(HbGraphTest, FindDirectEdgeRuleRecoversEachRule) {
  // A graph mixing several HB rules must report the rule that created
  // each specific edge, not just any rule.
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  OpId C = G.addOperation(op("c"));
  OpId D = G.addOperation(op("d"));
  G.addEdge(A, B, HbRule::R10_AjaxSend);
  G.addEdge(A, C, HbRule::R17_SetInterval);
  G.addEdge(B, D, HbRule::R3_ExeBeforeLoad);
  G.addEdge(C, D, HbRule::RA_InlineSplit);
  HbRule Rule;
  ASSERT_TRUE(G.findDirectEdgeRule(A, B, Rule));
  EXPECT_EQ(Rule, HbRule::R10_AjaxSend);
  ASSERT_TRUE(G.findDirectEdgeRule(A, C, Rule));
  EXPECT_EQ(Rule, HbRule::R17_SetInterval);
  ASSERT_TRUE(G.findDirectEdgeRule(B, D, Rule));
  EXPECT_EQ(Rule, HbRule::R3_ExeBeforeLoad);
  ASSERT_TRUE(G.findDirectEdgeRule(C, D, Rule));
  EXPECT_EQ(Rule, HbRule::RA_InlineSplit);
}

TEST(HbGraphTest, MemoizedQueriesStableUnderGrowth) {
  // Adding later operations must not change reachability between
  // existing pairs (the memoization soundness property).
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  EXPECT_FALSE(G.happensBefore(A, B)); // Memoized as unreachable.
  OpId C = G.addOperation(op("c"));
  G.addEdge(A, C, HbRule::RProgram);
  G.addEdge(B, C, HbRule::RProgram);
  // Still unreachable: edges only point at the new op.
  EXPECT_FALSE(G.happensBefore(A, B));
  EXPECT_TRUE(G.happensBefore(A, C));
}

TEST(HbGraphTest, DefaultsToVectorClocks) {
  // A bare graph must answer happensBefore() with the same strategy a
  // session-built one does (SessionOptions::UseVectorClocks defaults
  // true); a mismatch here once made ablations silently compare a DFS
  // graph against a vector-clock session.
  EXPECT_TRUE(HbGraph().usesVectorClocks());
}

TEST(HbGraphTest, ResetQueryStateInvalidatesMemo) {
  HbGraph G;
  OpId A = G.addOperation(op("a"));
  OpId B = G.addOperation(op("b"));
  G.addEdge(A, B, HbRule::RProgram);
  G.setUseVectorClocks(false);

  EXPECT_TRUE(G.happensBefore(A, B)); // Computed, memoized.
  uint64_t Hits = G.memoHits();
  EXPECT_TRUE(G.happensBefore(A, B)); // Served from the memo.
  EXPECT_EQ(G.memoHits(), Hits + 1);

  // After the epoch bump the stale entry must not be served: the next
  // query recomputes (hit counter unchanged) and re-memoizes.
  G.resetQueryState();
  EXPECT_TRUE(G.happensBefore(A, B));
  EXPECT_EQ(G.memoHits(), Hits + 1);
  EXPECT_TRUE(G.happensBefore(A, B));
  EXPECT_EQ(G.memoHits(), Hits + 2);
}

TEST(HbGraphTest, ResetQueryStateKeepsAnswersCorrect) {
  // Epoch invalidation across a growing graph: answers after a reset must
  // match a fresh computation, including pairs cached before the reset.
  HbGraph G;
  std::vector<OpId> Ops;
  for (int I = 0; I < 40; ++I) {
    OpId Op2 = G.addOperation(op("n"));
    if (I > 0 && I % 4 != 0)
      G.addEdge(Ops[static_cast<size_t>(I / 2)], Op2, HbRule::RProgram);
    Ops.push_back(Op2);
  }
  std::vector<bool> Before;
  for (OpId A : Ops)
    for (OpId B : Ops)
      if (A < B)
        Before.push_back(G.reachesDfs(A, B));
  G.resetQueryState();
  size_t I = 0;
  for (OpId A : Ops)
    for (OpId B : Ops)
      if (A < B) {
        EXPECT_EQ(G.reachesDfs(A, B), Before[I++]);
      }
}

} // namespace

//===- tests/explore_test.cpp - automatic exploration tests --------------------===//

#include "explore/Explorer.h"

#include <gtest/gtest.h>

using namespace wr;
using namespace wr::rt;
using namespace wr::explore;

namespace {

class ExploreTest : public ::testing::Test {
protected:
  ExploreTest() : B(BrowserOptions()) {}

  void load(const std::string &Html) {
    B.network().addResource("index.html", Html, 10);
    B.loadPage("index.html");
    B.runToQuiescence();
  }

  std::string global(const std::string &Name) {
    js::Value *V = B.interp().globalEnv()->findOwn(Name);
    return V ? js::toDisplayString(*V) : "<undeclared>";
  }

  Browser B;
};

TEST_F(ExploreTest, AutoEventListMatchesPaper) {
  const auto &Types = Explorer::autoEventTypes();
  // Sec. 5.2.2's exact list.
  std::vector<std::string> Expected = {
      "mouseover", "mousemove", "mouseout", "mouseup", "mousedown",
      "keydown",   "keyup",     "keypress", "change",  "input",
      "focus",     "blur"};
  EXPECT_EQ(Types, Expected);
}

TEST_F(ExploreTest, DispatchesOnlyWhereHandlersRegistered) {
  load("<div id=\"a\" onmouseover=\"window.hovered = true;\"></div>"
       "<div id=\"b\"></div>"
       "<script>var count = 0;"
       "document.getElementById('a').addEventListener('focus',"
       "  function() { count++; });</script>");
  Explorer E(B);
  ExploreStats Stats = E.run();
  // a has two handler types (mouseover, focus); b has none.
  EXPECT_EQ(Stats.EventsDispatched, 2u);
  EXPECT_EQ(global("count"), "1"); // focus is not repeatable.
  js::Value *V = B.mainWindow()->windowObject()->findOwnProperty("hovered");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
}

TEST_F(ExploreTest, RepeatableEventsDispatchedTwice) {
  load("<div id=\"a\"></div>"
       "<script>var n = 0;"
       "document.getElementById('a').addEventListener('mouseover',"
       "  function() { n++; });</script>");
  Explorer E(B);
  E.run();
  EXPECT_EQ(global("n"), "2"); // MultiDispatchRepeats default.
}

TEST_F(ExploreTest, RepeatCountConfigurable) {
  load("<div id=\"a\"></div>"
       "<script>var n = 0;"
       "document.getElementById('a').onclick = function() { n++; };"
       "</script>");
  ExploreOptions Opts;
  Opts.MultiDispatchRepeats = 5;
  Explorer E(B, Opts);
  E.run();
  EXPECT_EQ(global("n"), "5");
}

TEST_F(ExploreTest, ClicksJavascriptLinks) {
  load("<a href=\"javascript:window.linkA = true;\">a</a>"
       "<a href=\"JAVASCRIPT:window.linkB = true;\">b</a>"
       "<a href=\"https://example.com\">c</a>");
  Explorer E(B);
  ExploreStats Stats = E.run();
  EXPECT_EQ(Stats.LinksClicked, 2u); // Case-insensitive protocol.
  js::Object *W = B.mainWindow()->windowObject();
  EXPECT_NE(W->findOwnProperty("linkA"), nullptr);
  EXPECT_NE(W->findOwnProperty("linkB"), nullptr);
}

TEST_F(ExploreTest, TypesIntoTextBoxes) {
  load("<input type=\"text\" id=\"a\" />"
       "<input type=\"checkbox\" id=\"c\" />"
       "<input id=\"untyped\" />"
       "<textarea id=\"t\"></textarea>");
  ExploreOptions Opts;
  Opts.TypedText = "hello";
  Explorer E(B, Opts);
  ExploreStats Stats = E.run();
  // text input + typeless input + textarea; not the checkbox.
  EXPECT_EQ(Stats.BoxesTyped, 3u);
  Document &Doc = B.mainWindow()->document();
  EXPECT_EQ(Doc.getElementById("a")->formValue(), "hello");
  EXPECT_EQ(Doc.getElementById("untyped")->formValue(), "hello");
  EXPECT_EQ(Doc.getElementById("t")->formValue(), "hello");
  EXPECT_EQ(Doc.getElementById("c")->formValue(), "");
}

TEST_F(ExploreTest, MaxEventsCap) {
  std::string Html;
  for (int I = 0; I < 30; ++I)
    Html += "<div onmouseover=\"1;\"></div>";
  load(Html);
  ExploreOptions Opts;
  Opts.MaxEvents = 10;
  Explorer E(B, Opts);
  ExploreStats Stats = E.run();
  EXPECT_EQ(Stats.EventsDispatched, 10u);
}

TEST_F(ExploreTest, FlagsDisableStages) {
  load("<div onmouseover=\"1;\"></div>"
       "<a href=\"javascript:1;\">x</a>"
       "<input type=\"text\" id=\"q\" />");
  ExploreOptions Opts;
  Opts.DispatchHandlerEvents = false;
  Opts.ClickJavascriptLinks = false;
  Opts.TypeIntoTextBoxes = false;
  Explorer E(B, Opts);
  ExploreStats Stats = E.run();
  EXPECT_EQ(Stats.EventsDispatched, 0u);
  EXPECT_EQ(Stats.LinksClicked, 0u);
  EXPECT_EQ(Stats.BoxesTyped, 0u);
}

TEST_F(ExploreTest, ExploresIframeDocuments) {
  B.network().addResource("index.html",
                          "<iframe src=\"sub.html\"></iframe>", 10);
  B.network().addResource(
      "sub.html", "<div onmouseover=\"window.subHovered = true;\"></div>",
      100);
  B.loadPage("index.html");
  B.runToQuiescence();
  Explorer E(B);
  ExploreStats Stats = E.run();
  EXPECT_GE(Stats.EventsDispatched, 1u);
  // Frames share the global scope (paper Fig. 1 model).
  js::Value *V =
      B.mainWindow()->windowObject()->findOwnProperty("subHovered");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->isBool() && V->asBool());
}

TEST_F(ExploreTest, HandlersRegisteredDuringExplorationNotMissed) {
  // Handlers added by explored handlers themselves are fine to skip
  // (paper's exploration is one level deep); this pins the behavior.
  load("<div id=\"a\"></div>"
       "<script>"
       "var deep = 0;"
       "document.getElementById('a').onclick = function() {"
       "  document.getElementById('a').onmouseover ="
       "    function() { deep++; };"
       "};"
       "</script>");
  Explorer E(B);
  E.run();
  EXPECT_EQ(global("deep"), "0");
}

} // namespace

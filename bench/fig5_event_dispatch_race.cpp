//===- bench/fig5_event_dispatch_race.cpp - Reproduce Figure 5 -----------------===//
//
// Paper Fig. 5: a script installs an iframe's onload handler after the
// tag; if the frame loads first, the handler never runs. This harness
// sweeps the frame latency, showing the handler silently dropping in
// fast-frame schedules while the dispatch race is detected in all of
// them, and that the in-tag variant (ordered by rule 8) never races.
//
//===----------------------------------------------------------------------===//

#include "detect/Filters.h"
#include "detect/RaceDetector.h"
#include "runtime/Browser.h"

#include <cstdio>

using namespace wr;
using namespace wr::rt;
using namespace wr::detect;

namespace {

struct Outcome {
  bool HandlerRan = false;
  bool RaceDetected = false;
  bool SurvivesFilter = false;
};

Outcome runSchedule(VirtualTime FrameLatency, bool InTag) {
  Browser B{BrowserOptions()};
  RaceDetector D(B.hb(), B.interner());
  B.addSink(&D);
  std::string Html =
      InTag ? "<iframe id=\"i\" src=\"a.html\""
              " onload=\"window.frameLoaded = true;\"></iframe>"
            : "<iframe id=\"i\" src=\"a.html\"></iframe>"
              "<p>padding</p><p>more padding</p>"
              "<script>document.getElementById('i').onload ="
              " function() { window.frameLoaded = true; };</script>";
  B.network().addResource("index.html", Html, 10);
  B.network().addResource("a.html", "<p>nested</p>", FrameLatency);
  B.loadPage("index.html");
  B.runToQuiescence();

  Outcome O;
  js::Value *V =
      B.mainWindow()->windowObject()->findOwnProperty("frameLoaded");
  O.HandlerRan = V && V->isBool() && V->asBool();
  std::vector<Race> Filtered = filterSingleDispatch(
      D.races(), [&B](const EventHandlerLoc &Loc) {
        return B.dispatchCount(TargetKey{Loc.Target, Loc.TargetObject},
                               Loc.EventType);
      });
  for (const Race &R : D.races())
    if (R.Kind == RaceKind::EventDispatch)
      O.RaceDetected = true;
  for (const Race &R : Filtered)
    if (R.Kind == RaceKind::EventDispatch)
      O.SurvivesFilter = true;
  return O;
}

} // namespace

int main() {
  std::printf("== Fig. 5: event dispatch race on iframe onload ==\n\n");
  std::printf("%12s | %11s | %8s | %s\n", "frame lat", "handler ran",
              "detected", "survives single-dispatch filter");
  bool SawDrop = false, SawRun = false;
  int Missed = 0;
  for (VirtualTime FrameLatency : {15u, 40u, 200u, 2000u, 20000u}) {
    Outcome O = runSchedule(FrameLatency, /*InTag=*/false);
    SawDrop |= !O.HandlerRan;
    SawRun |= O.HandlerRan;
    if (!O.RaceDetected)
      ++Missed;
    std::printf("%10lluus | %11s | %8s | %s\n",
                static_cast<unsigned long long>(FrameLatency),
                O.HandlerRan ? "yes" : "NO (lost)",
                O.RaceDetected ? "yes" : "MISSED",
                O.SurvivesFilter ? "yes" : "no");
  }
  std::printf("\nboth outcomes observed: handler lost %s, handler ran %s; "
              "missed detections: %d\n",
              SawDrop ? "yes" : "NO", SawRun ? "yes" : "NO", Missed);

  Outcome InTag = runSchedule(15, /*InTag=*/true);
  std::printf("\nhandler in the tag itself (rule 8 orders it): ran=%s "
              "race=%s (expect yes/no)\n",
              InTag.HandlerRan ? "yes" : "no",
              InTag.RaceDetected ? "STILL DETECTED" : "no");
  return 0;
}

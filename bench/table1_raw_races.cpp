//===- bench/table1_raw_races.cpp - Reproduce Table 1 -------------------------===//
//
// Paper Table 1: mean, median, and maximum number of *unfiltered* races of
// each type across the 100-site corpus.
//
//   Race type       Mean   Median   Max
//   HTML            2.2    0.0      112
//   Function        0.4    0.0      6
//   Variable        22.4   5.5      269
//   Event Dispatch  22.3   7.0      198
//   All             47.3   27.0     278
//
// This harness runs WebRacer over the synthetic Fortune-100 corpus and
// prints the measured distribution next to the paper's.
//
//===----------------------------------------------------------------------===//

#include "sites/CorpusRunner.h"

#include <cstdio>

using namespace wr;
using namespace wr::sites;
using wr::detect::RaceKind;

int main() {
  const uint64_t Seed = 2012;
  std::printf("== Table 1: raw races per type across 100 sites ==\n");
  std::printf("building corpus (seed %llu)...\n",
              static_cast<unsigned long long>(Seed));
  std::vector<GeneratedSite> Corpus = buildFortune100Corpus(Seed);
  webracer::SessionOptions Opts;
  CorpusStats Stats = runCorpus(Corpus, Opts, Seed);

  struct RowSpec {
    const char *Name;
    double PaperMean, PaperMedian;
    size_t PaperMax;
    CorpusStats::Distribution Measured;
  };
  RowSpec Rows[] = {
      {"HTML", 2.2, 0.0, 112, Stats.rawDistribution(RaceKind::Html)},
      {"Function", 0.4, 0.0, 6, Stats.rawDistribution(RaceKind::Function)},
      {"Variable", 22.4, 5.5, 269,
       Stats.rawDistribution(RaceKind::Variable)},
      {"Event Dispatch", 22.3, 7.0, 198,
       Stats.rawDistribution(RaceKind::EventDispatch)},
      {"All", 47.3, 27.0, 278, Stats.rawTotalDistribution()},
  };

  std::printf("\n%-16s | %21s | %21s\n", "", "paper (mean/med/max)",
              "measured (mean/med/max)");
  std::printf("-----------------+-----------------------+----------------"
              "-------\n");
  for (const RowSpec &Row : Rows)
    std::printf("%-16s | %6.1f %6.1f %7zu | %6.1f %6.1f %7zu\n", Row.Name,
                Row.PaperMean, Row.PaperMedian, Row.PaperMax,
                Row.Measured.Mean, Row.Measured.Median, Row.Measured.Max);

  obs::RunStats Total = Stats.aggregate();
  std::printf("\ncorpus: %zu sites, %llu operations, %llu hb edges\n",
              Stats.Sites.size(),
              static_cast<unsigned long long>(Total.Operations),
              static_cast<unsigned long long>(Total.HbEdges));
  return 0;
}

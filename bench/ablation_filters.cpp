//===- bench/ablation_filters.cpp - Filter & detector ablations ----------------===//
//
// Three ablations around the paper's design choices:
//
//  1. Filter effectiveness (Sec. 5.3 / 6.3): raw vs filtered counts per
//     race type over the corpus. The paper's shape: variable and
//     event-dispatch counts collapse (2240 -> 8, 2230 -> 91); HTML and
//     function counts are untouched.
//
//  2. Single-slot vs full-history detection (Sec. 5.1 "Limitation"): the
//     paper's own 3-operation miss example, plus corpus-wide counts of
//     what the constant-space algorithm gives up.
//
//  3. AJAX happens-before edges (Sec. 7): the paper's implementation
//     omitted rule 10; toggling it shows the false positives that
//     omission costs.
//
//===----------------------------------------------------------------------===//

#include "detect/Filters.h"
#include "sites/CorpusRunner.h"

#include <cstdio>

using namespace wr;
using namespace wr::sites;
using namespace wr::detect;

static void filterEffectiveness() {
  std::printf("-- 1. filter effectiveness over the corpus --\n");
  std::vector<GeneratedSite> Corpus = buildFortune100Corpus(2012);
  webracer::SessionOptions Opts;
  CorpusStats Stats = runCorpus(Corpus, Opts, 2012);
  size_t RawVar = 0, RawDisp = 0, RawHtml = 0, RawFn = 0;
  for (const SiteRunStats &S : Stats.Sites) {
    RawVar += S.Raw.Variable;
    RawDisp += S.Raw.EventDispatch;
    RawHtml += S.Raw.Html;
    RawFn += S.Raw.Function;
  }
  RaceTally F = Stats.filteredTotals();
  std::printf("type            raw     filtered   reduction\n");
  auto Print = [](const char *Name, size_t Raw, size_t Filtered) {
    std::printf("%-14s %6zu  %9zu   %5.1fx\n", Name, Raw, Filtered,
                Filtered ? static_cast<double>(Raw) /
                               static_cast<double>(Filtered)
                         : static_cast<double>(Raw));
  };
  Print("html", RawHtml, F.Html);
  Print("function", RawFn, F.Function);
  Print("variable", RawVar, F.Variable);
  Print("event-dispatch", RawDisp, F.EventDispatch);
  std::printf("(paper: variable 2240->8, event-dispatch 2230->91, "
              "html/function unchanged)\n\n");
}

static void detectorModes() {
  std::printf("-- 2. single-slot vs full-history detector --\n");
  // The paper's miss example: ops 1,2,3 access e as read/write/read with
  // only 1 -> 2 ordered, observed in the order 3,1,2. The single-slot
  // algorithm loses the 3-2 race because 1's read overwrites 3's.
  HbGraph Hb;
  Operation Meta;
  OpId Op1 = Hb.addOperation(Meta);
  OpId Op2 = Hb.addOperation(Meta);
  OpId Op3 = Hb.addOperation(Meta);
  Hb.addEdge(Op1, Op2, HbRule::RProgram);

  LocationInterner Interner;
  LocId E = Interner.intern(JSVarLoc{0, "e"});
  auto Feed = [&](RaceDetector &D) {
    Access Read3{AccessKind::Read, AccessOrigin::Plain, Op3, E, ""};
    Access Read1{AccessKind::Read, AccessOrigin::Plain, Op1, E, ""};
    Access Write2{AccessKind::Write, AccessOrigin::Plain, Op2, E, ""};
    D.onMemoryAccess(Read3);
    D.onMemoryAccess(Read1);
    D.onMemoryAccess(Write2);
  };
  DetectorOptions Single;
  RaceDetector SingleSlot(Hb, Interner, Single);
  Feed(SingleSlot);
  DetectorOptions Full;
  Full.HistoryMode = DetectorOptions::Mode::FullHistory;
  Full.OnePerLocation = false;
  RaceDetector FullHistory(Hb, Interner, Full);
  Feed(FullHistory);
  std::printf("paper's 3-op example (order 3,1,2; only 1->2 ordered):\n");
  std::printf("  single-slot races: %zu (the 2-3 race is missed)\n",
              SingleSlot.races().size());
  std::printf("  full-history races: %zu\n\n", FullHistory.races().size());

  // Corpus-wide: how many more races does full history find?
  std::vector<GeneratedSite> Corpus = buildFortune100Corpus(2012);
  webracer::SessionOptions A;
  webracer::SessionOptions B;
  B.Detector.HistoryMode = DetectorOptions::Mode::FullHistory;
  size_t SingleTotal = 0, FullTotal = 0;
  uint64_t SingleChc = 0, FullChc = 0;
  for (size_t I = 0; I < 20; ++I) { // First 20 sites keep this quick.
    SiteRunStats SA = runSite(Corpus[I], A, 1000 + I);
    SiteRunStats SB = runSite(Corpus[I], B, 1000 + I);
    SingleTotal += SA.Raw.total();
    FullTotal += SB.Raw.total();
    (void)SingleChc;
    (void)FullChc;
  }
  std::printf("first 20 corpus sites: single-slot=%zu races, "
              "full-history=%zu races\n\n",
              SingleTotal, FullTotal);
}

static void ajaxEdges() {
  std::printf("-- 3. rule-10 AJAX edges on/off (paper omitted them) --\n");
  auto Run = [](bool Enable) {
    webracer::SessionOptions Opts;
    Opts.Browser.EnableAjaxHbEdges = Enable;
    webracer::Session S(Opts);
    // A page with several XHRs whose handlers read state set before
    // send: perfectly synchronized, but racy without rule 10.
    std::string Html = "<script>";
    for (int I = 0; I < 8; ++I) {
      char Buf[512];
      std::snprintf(Buf, sizeof(Buf),
                    "var state%d = 'ready';"
                    "var xhr%d = new XMLHttpRequest();"
                    "xhr%d.open('GET', 'api%d.json');"
                    "xhr%d.onreadystatechange = function() {"
                    "  var v = state%d; };"
                    "xhr%d.send();",
                    I, I, I, I, I, I, I);
      Html += Buf;
    }
    Html += "</script>";
    S.network().addResource("index.html", Html, 10);
    for (int I = 0; I < 8; ++I)
      S.network().addResource("api" + std::to_string(I) + ".json", "{}",
                              500 + static_cast<uint64_t>(I) * 100);
    webracer::SessionResult R = S.run("index.html");
    return R.RawRaces.size();
  };
  size_t With = Run(true);
  size_t Without = Run(false);
  std::printf("8 synchronized XHRs: races with rule 10 = %zu, without = "
              "%zu (false positives)\n\n",
              With, Without);
}

int main() {
  std::printf("== ablations: filters, detector history, AJAX edges ==\n\n");
  filterEffectiveness();
  detectorModes();
  ajaxEdges();
  return 0;
}

//===- bench/race_prediction.cpp - Predictive-engine dominance gate -----------===//
//
// The acceptance gate for the pluggable partial-order engines (ISSUE 7):
//
//  1. On each seeded prediction pattern (a single-pattern site), SHB
//     strictly dominates the first-race-only observed run: every race
//     the online single-slot detector reported is re-found, plus at
//     least one predicted race the observed run missed.
//
//  2. WCP's findings are a superset of SHB's - per seeded site by
//     (location, operation-pair) key, and corpus-wide by the headline
//     counters (candidates and predicted, per site).
//
//  3. Selecting the default engine changes nothing: the fig1-fig5 run
//     reports under --engine hb are byte-identical to the checked-in
//     golden file (tests/golden/fig_reports.json).
//
// Usage: race_prediction [--quick]   (--quick runs a 25-site corpus)
//
//===----------------------------------------------------------------------===//

#include "analysis/Scenarios.h"
#include "obs/Json.h"
#include "sites/CorpusRunner.h"
#include "webracer/RunReport.h"
#include "webracer/Session.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

using namespace wr;
using namespace wr::detect;

namespace {

webracer::SessionResult runSpec(const sites::SiteSpec &Spec,
                                webracer::SessionOptions Opts) {
  sites::GeneratedSite Site = sites::buildSite(Spec);
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  for (const sites::SiteResource &R : Site.Resources)
    S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
  return S.run(Site.IndexUrl);
}

const PredictionResult *findEngine(const webracer::SessionResult &R,
                                   EngineKind Kind) {
  for (const PredictionResult &P : R.Predictions)
    if (P.Engine == Kind)
      return &P;
  return nullptr;
}

using RaceKey = std::tuple<std::string, OpId, OpId>;

std::set<RaceKey> keysOf(const PredictionResult &P) {
  std::set<RaceKey> Keys;
  for (const PredictedRace &PR : P.Races)
    Keys.insert({toString(PR.R.Loc), std::min(PR.R.First.Op, PR.R.Second.Op),
                 std::max(PR.R.First.Op, PR.R.Second.Op)});
  return Keys;
}

const obs::PredictionRow *findRow(const obs::RunStats &Stats,
                                  const char *Engine) {
  for (const obs::PredictionRow &Row : Stats.Prediction)
    if (Row.Engine == Engine)
      return &Row;
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;

  std::printf("== Race-prediction gate (SHB / WCP engines) ==\n\n");
  int Failures = 0;

  // Gates 1 and 2a: per seeded pattern, SHB dominance and WCP superset.
  const sites::PatternKind Seeded[] = {sites::PatternKind::PostFirstRaceBenign,
                                       sites::PatternKind::IntervalSkipBenign};
  for (sites::PatternKind Kind : Seeded) {
    sites::SiteSpec Spec;
    Spec.Name = "gate";
    Spec.Patterns.push_back({Kind, 1});
    webracer::SessionOptions Opts;
    Opts.Predict = true;
    webracer::SessionResult R = runSpec(Spec, Opts);

    const PredictionResult *Shb = findEngine(R, EngineKind::Shb);
    const PredictionResult *Wcp = findEngine(R, EngineKind::Wcp);
    if (!Shb || !Wcp) {
      std::printf("FAIL: %s missing prediction passes (%zu present)\n",
                  toString(Kind), R.Predictions.size());
      ++Failures;
      continue;
    }
    if (Shb->observedMatched() != R.RawRaces.size()) {
      std::printf("FAIL: %s SHB re-found %zu of %zu observed race(s)\n",
                  toString(Kind), Shb->observedMatched(), R.RawRaces.size());
      ++Failures;
    }
    if (Shb->predictedCount() < 1) {
      std::printf("FAIL: %s SHB predicted nothing beyond the observed "
                  "run\n",
                  toString(Kind));
      ++Failures;
    }
    std::set<RaceKey> ShbKeys = keysOf(*Shb);
    std::set<RaceKey> WcpKeys = keysOf(*Wcp);
    if (!std::includes(WcpKeys.begin(), WcpKeys.end(), ShbKeys.begin(),
                       ShbKeys.end())) {
      std::printf("FAIL: %s WCP findings do not contain SHB's\n",
                  toString(Kind));
      ++Failures;
    }
    std::printf("%-24s observed %zu/%zu, shb +%zu predicted, "
                "wcp +%zu predicted (%llu edge(s) dropped)\n",
                toString(Kind), Shb->observedMatched(), R.RawRaces.size(),
                Shb->predictedCount(), Wcp->predictedCount(),
                static_cast<unsigned long long>(Wcp->DroppedEdges));
  }

  // Gate 2b: corpus-wide, every site's WCP headline counters contain
  // SHB's, and prediction finds real value beyond the observed runs.
  const uint64_t Seed = 2012;
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  if (Quick)
    Corpus.resize(25);
  webracer::SessionOptions CorpusOpts;
  CorpusOpts.Predict = true;
  sites::CorpusStats Stats =
      sites::runCorpus(Corpus, CorpusOpts, Seed, /*Jobs=*/0);

  uint64_t ShbPredicted = 0, WcpPredicted = 0, WcpDropped = 0;
  for (const sites::SiteRunStats &Site : Stats.Sites) {
    const obs::PredictionRow *Shb = findRow(Site.Stats, "shb");
    const obs::PredictionRow *Wcp = findRow(Site.Stats, "wcp");
    if (!Shb || !Wcp) {
      std::printf("FAIL: %s missing wr_prediction rows\n",
                  Site.Name.c_str());
      ++Failures;
      continue;
    }
    if (Wcp->Candidates < Shb->Candidates ||
        Wcp->Predicted.total() < Shb->Predicted.total()) {
      std::printf("FAIL: %s WCP counters below SHB's (candidates "
                  "%llu < %llu or predicted %llu < %llu)\n",
                  Site.Name.c_str(),
                  static_cast<unsigned long long>(Wcp->Candidates),
                  static_cast<unsigned long long>(Shb->Candidates),
                  static_cast<unsigned long long>(Wcp->Predicted.total()),
                  static_cast<unsigned long long>(Shb->Predicted.total()));
      ++Failures;
    }
    if (Shb->Predicted.total() == 0) {
      std::printf("FAIL: %s SHB predicted nothing (every site seeds a "
                  "post-first-race pattern)\n",
                  Site.Name.c_str());
      ++Failures;
    }
    ShbPredicted += Shb->Predicted.total();
    WcpPredicted += Wcp->Predicted.total();
    WcpDropped += Wcp->DroppedEdges;
  }
  std::printf("\ncorpus (%zu sites): shb predicted %llu, wcp predicted "
              "%llu, wcp dropped %llu edge(s)\n",
              Stats.Sites.size(),
              static_cast<unsigned long long>(ShbPredicted),
              static_cast<unsigned long long>(WcpPredicted),
              static_cast<unsigned long long>(WcpDropped));

  // Gate 3: the default engine's fig-page reports are byte-identical to
  // the golden file - the refactor changed nothing observable.
  obs::Json All = obs::Json::array();
  for (const analysis::PageSpec &Page : analysis::figurePages()) {
    webracer::SessionOptions Opts;
    Opts.Browser.Seed = 7;
    Opts.Detector.Engine = EngineKind::Hb;
    webracer::Session S(Opts);
    S.network().addResource(Page.EntryUrl, Page.Html, 10);
    for (const analysis::PageResource &R : Page.Resources)
      S.network().addResource(R.Url, R.Content, R.LatencyUs);
    webracer::SessionResult Result = S.run(Page.EntryUrl);
    All.push(webracer::buildRunReport(Page.Name, Result, S.browser().hb()));
  }
  std::string Actual = obs::writeJson(All);
  std::ifstream In(WR_GOLDEN_FILE, std::ios::binary);
  if (!In) {
    std::printf("FAIL: missing golden file %s\n", WR_GOLDEN_FILE);
    ++Failures;
  } else {
    std::ostringstream Expected;
    Expected << In.rdbuf();
    if (Actual != Expected.str()) {
      std::printf("FAIL: --engine hb fig reports differ from %s "
                  "(%zu vs %zu bytes)\n",
                  WR_GOLDEN_FILE, Actual.size(), Expected.str().size());
      ++Failures;
    } else {
      std::printf("fig reports under --engine hb: byte-identical to "
                  "golden (%zu bytes)\n",
                  Actual.size());
    }
  }

  if (Failures) {
    std::printf("RESULT: %d FAILURE(S)\n", Failures);
    return 1;
  }
  std::printf("RESULT: OK (SHB dominates, WCP contains SHB, hb output "
              "unchanged)\n");
  return 0;
}

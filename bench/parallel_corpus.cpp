//===- bench/parallel_corpus.cpp - Thread-pool corpus throughput ---------------===//
//
// Measures corpus throughput (sites/sec) of the thread-pool runCorpus at
// --jobs 1/2/4/8 and asserts that every job count produces the *identical*
// aggregate RaceTally (raw and filtered). Sessions are self-contained and
// per-site seeds are pre-drawn in corpus order, so parallelism must not
// change any result; a mismatch is a bug and exits 1.
//
//===----------------------------------------------------------------------===//

#include "sites/CorpusRunner.h"

#include <chrono>
#include <cstdio>
#include <thread>

using namespace wr;
using namespace wr::sites;

namespace {

struct Aggregate {
  detect::RaceTally Raw, Filtered;
  size_t Operations = 0, HbEdges = 0;

  bool operator==(const Aggregate &O) const {
    return Raw.Html == O.Raw.Html && Raw.Function == O.Raw.Function &&
           Raw.Variable == O.Raw.Variable &&
           Raw.EventDispatch == O.Raw.EventDispatch &&
           Filtered.Html == O.Filtered.Html &&
           Filtered.Function == O.Filtered.Function &&
           Filtered.Variable == O.Filtered.Variable &&
           Filtered.EventDispatch == O.Filtered.EventDispatch &&
           Operations == O.Operations && HbEdges == O.HbEdges;
  }
};

Aggregate aggregateOf(const CorpusStats &Stats) {
  Aggregate A;
  A.Filtered = Stats.filteredTotals();
  for (const SiteRunStats &S : Stats.Sites) {
    A.Raw.Html += S.Raw.Html;
    A.Raw.Function += S.Raw.Function;
    A.Raw.Variable += S.Raw.Variable;
    A.Raw.EventDispatch += S.Raw.EventDispatch;
    A.Operations += S.Operations;
    A.HbEdges += S.HbEdges;
  }
  return A;
}

void printAggregate(const char *Tag, const Aggregate &A) {
  std::printf("  [%s] raw=%zu filtered=%zu ops=%zu edges=%zu\n", Tag,
              A.Raw.total(), A.Filtered.total(), A.Operations, A.HbEdges);
}

} // namespace

int main() {
  const uint64_t Seed = 2012;
  std::printf("== parallel corpus: sites/sec by job count ==\n");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  std::printf("building corpus (seed %llu)...\n",
              static_cast<unsigned long long>(Seed));
  std::vector<GeneratedSite> Corpus = buildFortune100Corpus(Seed);
  webracer::SessionOptions Opts;

  const unsigned JobCounts[] = {1, 2, 4, 8};
  Aggregate Baseline;
  double BaselineSecs = 0;
  bool Mismatch = false;

  std::printf("\n%6s | %8s | %10s | %8s\n", "jobs", "secs", "sites/sec",
              "speedup");
  std::printf("-------+----------+------------+---------\n");
  for (unsigned Jobs : JobCounts) {
    auto Start = std::chrono::steady_clock::now();
    CorpusStats Stats = runCorpus(Corpus, Opts, Seed, Jobs);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    Aggregate A = aggregateOf(Stats);
    if (Jobs == 1) {
      Baseline = A;
      BaselineSecs = Secs;
    } else if (!(A == Baseline)) {
      Mismatch = true;
      std::printf("MISMATCH at --jobs %u:\n", Jobs);
      printAggregate("jobs=1", Baseline);
      char Tag[16];
      std::snprintf(Tag, sizeof(Tag), "jobs=%u", Jobs);
      printAggregate(Tag, A);
    }
    std::printf("%6u | %8.2f | %10.1f | %7.2fx\n", Jobs, Secs,
                Secs > 0 ? static_cast<double>(Stats.Sites.size()) / Secs
                         : 0.0,
                Secs > 0 ? BaselineSecs / Secs : 0.0);
  }

  if (Mismatch) {
    std::printf("\nFAIL: aggregate tallies differ across job counts\n");
    return 1;
  }
  std::printf("\nOK: identical aggregate tallies at every job count "
              "(raw=%zu filtered=%zu)\n",
              Baseline.Raw.total(), Baseline.Filtered.total());
  return 0;
}

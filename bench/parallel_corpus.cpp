//===- bench/parallel_corpus.cpp - Thread-pool corpus throughput ---------------===//
//
// Measures corpus throughput (sites/sec) of the thread-pool runCorpus at
// --jobs 1/2/4/8 and asserts that every job count produces the *identical*
// schema-1 corpus report, byte for byte (per-site stats, aggregate,
// distributions, filtered totals). Sessions are self-contained and
// per-site seeds are pre-drawn in corpus order, so parallelism must not
// change any result; a mismatch is a bug and exits 1.
//
// An optional argument names a file to receive the jobs=1 report, so CI
// can archive it and diff headline counters against a checked-in
// baseline:
//
//   parallel_corpus [report.json]
//
//===----------------------------------------------------------------------===//

#include "sites/CorpusReport.h"
#include "sites/CorpusRunner.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

using namespace wr;
using namespace wr::sites;

int main(int Argc, char **Argv) {
  const uint64_t Seed = 2012;
  std::printf("== parallel corpus: sites/sec by job count ==\n");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  std::printf("building corpus (seed %llu)...\n",
              static_cast<unsigned long long>(Seed));
  std::vector<GeneratedSite> Corpus = buildFortune100Corpus(Seed);
  webracer::SessionOptions Opts;

  const unsigned JobCounts[] = {1, 2, 4, 8};
  std::string BaselineReport;
  obs::RunStats BaselineAggregate;
  double BaselineSecs = 0;
  bool Mismatch = false;

  std::printf("\n%6s | %8s | %10s | %8s\n", "jobs", "secs", "sites/sec",
              "speedup");
  std::printf("-------+----------+------------+---------\n");
  for (unsigned Jobs : JobCounts) {
    auto Start = std::chrono::steady_clock::now();
    CorpusStats Stats = runCorpus(Corpus, Opts, Seed, Jobs);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    // Timing stays out of the document, so any byte difference is a
    // determinism bug, not clock noise.
    std::string Report =
        obs::writeJson(buildCorpusReport("fortune100", Stats));
    if (Jobs == 1) {
      BaselineReport = Report;
      BaselineAggregate = Stats.aggregate();
      BaselineSecs = Secs;
    } else if (Report != BaselineReport) {
      Mismatch = true;
      std::printf("MISMATCH at --jobs %u: report differs from jobs=1 "
                  "(%zu vs %zu bytes)\n",
                  Jobs, Report.size(), BaselineReport.size());
    }
    std::printf("%6u | %8.2f | %10.1f | %7.2fx\n", Jobs, Secs,
                Secs > 0 ? static_cast<double>(Stats.Sites.size()) / Secs
                         : 0.0,
                Secs > 0 ? BaselineSecs / Secs : 0.0);
  }

  if (Mismatch) {
    std::printf("\nFAIL: corpus reports differ across job counts\n");
    return 1;
  }
  if (Argc > 1) {
    std::ofstream Out(Argv[1], std::ios::binary | std::ios::trunc);
    Out.write(BaselineReport.data(),
              static_cast<std::streamsize>(BaselineReport.size()));
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Argv[1]);
      return 1;
    }
    std::printf("\nreport: %zu bytes -> %s\n", BaselineReport.size(),
                Argv[1]);
  }
  std::printf("\nOK: byte-identical corpus report at every job count "
              "(raw=%llu filtered=%llu)\n",
              static_cast<unsigned long long>(BaselineAggregate.Raw.total()),
              static_cast<unsigned long long>(
                  BaselineAggregate.Filtered.total()));
  return 0;
}

//===- bench/perf_overhead.cpp - Instrumentation overhead ---------------------===//
//
// Paper Sec. 6 "Performance": WebRacer handled pages with tens of
// thousands of operations in under a minute, but heavy JavaScript paid a
// ~500x slowdown vs JIT execution because only the interpreter was
// instrumented. Our substrate has no JIT, so the comparable measurements
// are (a) the interpreter running SunSpider-style kernels with
// instrumentation hooks on vs off, (b) end-to-end page-load throughput in
// operations/second, and (c) the epoch fast-path hit rate on the paper's
// fig1-fig5 pages (HARD-FAIL below 90%).
//
// On top of those, this harness maps the production-overhead story the
// sampling layer (src/sample) enables: the full recall-vs-sample-rate
// frontier - every strategy at rates 0.01/0.05/0.1/0.25/0.5/1.0 over the
// synthetic corpus, each cell scored for race recall against the
// unsampled baseline and checked for exact attrition reconciliation.
// The binding gates on the frontier's operating point live in
// bench/sampling_recall (tier-1); this table is the measurement artifact.
//
// Emits the shared schema-1 report document (wall-clock figures under
// "timing", counters and the frontier byte-stable), replacing the
// google-benchmark registration this file started from.
//
// Usage: perf_overhead [--quick] [report.json]
//
//   --quick        fewer kernel repetitions and a 30-site frontier
//   report.json    write the schema-1 report document
//
//===----------------------------------------------------------------------===//

#include "SamplingLab.h"

#include "analysis/Scenarios.h"
#include "detect/RaceDetector.h"
#include "js/Interpreter.h"
#include "js/Parser.h"
#include "js/StdLib.h"
#include "obs/Json.h"
#include "obs/Reporter.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace wr;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

struct Kernel {
  const char *Name;
  const char *Source;
};

const Kernel Kernels[] = {
    {"controlflow-recursive",
     "function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }"
     "var result = fib(16);"},
    {"math-partial-sums",
     "var s = 0;"
     "for (var i = 1; i <= 5000; i++) {"
     "  s += 1 / (i * i) + Math.sqrt(i) - Math.floor(Math.sqrt(i));"
     "}"
     "var result = s;"},
    {"string-base64",
     "var s = '';"
     "for (var i = 0; i < 400; i++) { s += 'ab'; }"
     "var n = 0;"
     "for (var j = 0; j < s.length; j += 7) { n += s.charCodeAt(j); }"
     "var result = n;"},
    {"access-nsieve",
     "var limit = 3000;"
     "var sieve = Array(limit);"
     "var count = 0;"
     "for (var i = 2; i < limit; i++) {"
     "  if (!sieve[i]) {"
     "    count++;"
     "    for (var k = i + i; k < limit; k += i) sieve[k] = true;"
     "  }"
     "}"
     "var result = count;"},
};

/// Hooks that drive a real race detector (the instrumented
/// configuration). Alternating operation ids make the detector exercise
/// its CHC path the way a page with two concurrent scripts would.
class DetectorHooks final : public js::JsHooks {
public:
  explicit DetectorHooks(const detect::DetectorOptions &Opts = {})
      : Detector(Hb, Interner, Opts) {
    OpId A = Hb.addOperation(Operation());
    OpId B = Hb.addOperation(Operation());
    Hb.addEdge(A, B, HbRule::RProgram);
    Ops[0] = A;
    Ops[1] = B;
  }

  void onVarRead(js::Env *Scope, std::string_view Name,
                 AccessOrigin Origin) override {
    record(AccessKind::Read, Scope->containerId(), Name, Origin);
  }
  void onVarWrite(js::Env *Scope, std::string_view Name,
                  AccessOrigin Origin) override {
    record(AccessKind::Write, Scope->containerId(), Name, Origin);
  }
  void onPropRead(js::Object *Obj, std::string_view Name,
                  AccessOrigin Origin) override {
    record(AccessKind::Read, Obj->containerId(), Name, Origin);
  }
  void onPropWrite(js::Object *Obj, std::string_view Name,
                   AccessOrigin Origin) override {
    record(AccessKind::Write, Obj->containerId(), Name, Origin);
  }

private:
  void record(AccessKind Kind, ContainerId Container,
              std::string_view Name, AccessOrigin Origin) {
    Access A;
    A.Kind = Kind;
    A.Origin = Origin;
    A.Op = Ops[Toggle ^= 1];
    A.Loc = Interner.internVar(Container, Name);
    Detector.onMemoryAccess(A);
  }

  HbGraph Hb;
  LocationInterner Interner;
  detect::RaceDetector Detector;
  OpId Ops[2];
  unsigned Toggle = 0;
};

/// Runs one kernel once; Mode 0 = bare, 1 = instrumented, 2 =
/// instrumented with per-location sampling at rate 0.1.
double runKernelOnce(const Kernel &K, int Mode) {
  js::Heap Heap;
  js::Env *Global = Heap.allocEnv(nullptr);
  js::Interpreter Interp(Heap, Global);
  js::installStdLib(Interp, 1);
  detect::DetectorOptions Opts;
  if (Mode == 2) {
    Opts.Sampling.Strategy = sample::SamplingStrategy::PerLocation;
    Opts.Sampling.Rate = 0.1;
    Opts.Sampling.Seed = 7;
  }
  DetectorHooks Hooks(Opts);
  if (Mode != 0)
    Interp.setHooks(&Hooks);
  js::ParseResult R = js::Parser::parseProgram(K.Source);
  auto Start = std::chrono::steady_clock::now();
  js::Completion C = Interp.runProgram(*R.Ast);
  double Secs = secondsSince(Start);
  // Keep the result observable so the run cannot be discarded.
  if (C.V.isObject() && Secs < 0)
    std::printf("unreachable\n");
  return Secs;
}

struct KernelRow {
  const char *Name;
  double BareMs = 0;
  double InstrumentedMs = 0;
  double SampledMs = 0;
  double Overhead = 0; ///< Instrumented / bare.
};

KernelRow runKernel(const Kernel &K, int Reps) {
  KernelRow Row;
  Row.Name = K.Name;
  double Best[3] = {1e30, 1e30, 1e30};
  for (int Rep = 0; Rep < Reps; ++Rep)
    for (int Mode = 0; Mode < 3; ++Mode)
      Best[Mode] = std::min(Best[Mode], runKernelOnce(K, Mode));
  Row.BareMs = Best[0] * 1e3;
  Row.InstrumentedMs = Best[1] * 1e3;
  Row.SampledMs = Best[2] * 1e3;
  Row.Overhead = Best[0] > 0 ? Best[1] / Best[0] : 0;
  return Row;
}

/// End-to-end page throughput: operations per second through the full
/// pipeline (parse + execute + detect + explore).
double pageLoadOpsPerSecond(int Reps) {
  sites::SiteSpec Spec;
  Spec.Name = "PerfSite";
  Spec.Patterns = {
      {sites::PatternKind::VariableNoiseBenign, 50},
      {sites::PatternKind::HoverMenuNoiseBenign, 30},
      {sites::PatternKind::GomezMonitorHarmful, 10},
      {sites::PatternKind::HtmlPollingBenign, 20},
  };
  sites::GeneratedSite Site = sites::buildSite(Spec);
  webracer::SessionOptions Opts;
  uint64_t TotalOps = 0;
  auto Start = std::chrono::steady_clock::now();
  for (int Rep = 0; Rep < Reps; ++Rep) {
    sites::SiteRunStats Stats = sites::runSite(Site, Opts, 42);
    TotalOps += Stats.Stats.Operations;
  }
  double Secs = secondsSince(Start);
  return Secs > 0 ? static_cast<double>(TotalOps) / Secs : 0;
}

/// Epoch fast-path effectiveness on the paper's fig1-fig5 pages: the
/// fraction of ordering checks the detector answers from its epoch/pair
/// caches instead of the HB oracle. The LocId refactor's perf claim rests
/// on this staying high, so the run fails if the rate drops below 90%.
double figCorpusEpochHitRate(uint64_t &EpochOut, uint64_t &ChcOut) {
  uint64_t Epoch = 0, Chc = 0;
  for (const analysis::PageSpec &Page : analysis::figurePages()) {
    webracer::SessionOptions Opts;
    Opts.Browser.Seed = 7;
    webracer::Session S(Opts);
    S.network().addResource(Page.EntryUrl, Page.Html, 10);
    for (const analysis::PageResource &R : Page.Resources)
      S.network().addResource(R.Url, R.Content, R.LatencyUs);
    webracer::SessionResult Result = S.run(Page.EntryUrl);
    Epoch += Result.Stats.EpochHits;
    Chc += Result.Stats.ChcQueries;
  }
  EpochOut = Epoch;
  ChcOut = Chc;
  return Epoch + Chc ? static_cast<double>(Epoch) /
                           static_cast<double>(Epoch + Chc)
                     : 0.0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  const char *ReportPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else
      ReportPath = Argv[I];
  }
  int Failures = 0;

  std::printf("== perf_overhead: interpreter instrumentation cost ==\n");
  int Reps = Quick ? 3 : 5;
  std::printf("\n%22s | %8s | %8s | %9s | %8s\n", "kernel", "bare ms",
              "instr ms", "smpld ms", "overhead");
  std::printf("-----------------------+----------+----------+-----------+--"
              "-------\n");
  std::vector<KernelRow> KernelRows;
  for (const Kernel &K : Kernels) {
    KernelRow Row = runKernel(K, Reps);
    std::printf("%22s | %8.2f | %8.2f | %9.2f | %7.1fx\n", Row.Name,
                Row.BareMs, Row.InstrumentedMs, Row.SampledMs,
                Row.Overhead);
    KernelRows.push_back(Row);
  }

  double OpsPerSec = pageLoadOpsPerSecond(Reps);
  std::printf("\npage load: %.0f operations/sec end-to-end\n", OpsPerSec);

  uint64_t EpochHits = 0, ChcQueries = 0;
  double HitRate = figCorpusEpochHitRate(EpochHits, ChcQueries);
  std::printf("fig corpus epoch fast-path hit rate: %.3f "
              "(epoch_hits=%llu, chc_queries=%llu)\n",
              HitRate, static_cast<unsigned long long>(EpochHits),
              static_cast<unsigned long long>(ChcQueries));
  if (HitRate < 0.9) {
    std::printf("FAIL: epoch fast-path hit rate %.3f < 0.9 on the fig "
                "corpus\n",
                HitRate);
    ++Failures;
  }

  std::printf("\n== recall-vs-sample-rate frontier ==\n");
  constexpr uint64_t Seed = 2012;
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  if (Quick && Corpus.size() > 30)
    Corpus.resize(30);
  webracer::SessionOptions Base;
  sites::CorpusStats BaseStats = sites::runCorpus(Corpus, Base, Seed, 4);
  std::set<std::string> BaselineKeys = bench::raceKeys(BaseStats);
  std::printf("corpus: %zu sites, %zu distinct baseline races\n",
              Corpus.size(), BaselineKeys.size());

  const sample::SamplingStrategy Strategies[] = {
      sample::SamplingStrategy::PerLocation,
      sample::SamplingStrategy::PerPair,
      sample::SamplingStrategy::Adaptive,
  };
  const double Rates[] = {0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
  std::printf("\n%13s | %5s | %6s | %7s | %13s\n", "strategy", "rate",
              "recall", "matched", "sampled/seen");
  std::printf("--------------+-------+--------+---------+--------------\n");
  std::vector<bench::RecallCell> Cells;
  for (sample::SamplingStrategy Strategy : Strategies) {
    for (double Rate : Rates) {
      sample::SamplingOptions S;
      S.Strategy = Strategy;
      S.Rate = Rate;
      bench::RecallCell Cell =
          bench::runCell(Corpus, S, Seed, 4, BaselineKeys);
      double SampledShare =
          Cell.SeenAccesses
              ? static_cast<double>(Cell.SampledAccesses) /
                    static_cast<double>(Cell.SeenAccesses)
              : 1.0;
      std::printf("%13s | %5.2f | %6.3f | %3zu/%3zu | %12.3f%%\n",
                  sample::toString(Strategy), Rate, Cell.Recall,
                  Cell.MatchedRaces, Cell.BaselineRaces,
                  100.0 * SampledShare);
      if (!Cell.ReconcileOk) {
        std::printf("FAIL: %s@%.2f seen %llu != sampled %llu + dropped "
                    "%llu\n",
                    sample::toString(Strategy), Rate,
                    static_cast<unsigned long long>(Cell.SeenAccesses),
                    static_cast<unsigned long long>(Cell.SampledAccesses),
                    static_cast<unsigned long long>(Cell.DroppedAccesses));
        ++Failures;
      }
      Cells.push_back(Cell);
    }
  }

  obs::Json Doc = obs::makeReportEnvelope("perf_overhead", "sunspider");
  Doc.set("quick", Quick);
  Doc.set("epoch_hit_rate", HitRate);
  Doc.set("epoch_hits", EpochHits);
  Doc.set("chc_queries", ChcQueries);
  obs::Json Frontier = obs::Json::array();
  for (const bench::RecallCell &Cell : Cells) {
    obs::Json C = obs::Json::object();
    C.set("strategy", std::string(sample::toString(Cell.Strategy)));
    C.set("rate_ppm", static_cast<uint64_t>(Cell.Rate * 1e6 + 0.5));
    C.set("matched", static_cast<uint64_t>(Cell.MatchedRaces));
    C.set("found", static_cast<uint64_t>(Cell.FoundRaces));
    C.set("baseline", static_cast<uint64_t>(Cell.BaselineRaces));
    C.set("recall", Cell.Recall);
    C.set("seen", Cell.SeenAccesses);
    C.set("sampled", Cell.SampledAccesses);
    C.set("dropped", Cell.DroppedAccesses);
    Frontier.push(std::move(C));
  }
  Doc.set("frontier", std::move(Frontier));
  obs::Json Timing = obs::Json::object();
  obs::Json KernelsJson = obs::Json::object();
  for (const KernelRow &Row : KernelRows) {
    obs::Json K = obs::Json::object();
    K.set("bare_ms", Row.BareMs);
    K.set("instrumented_ms", Row.InstrumentedMs);
    K.set("sampled_ms", Row.SampledMs);
    K.set("overhead", Row.Overhead);
    KernelsJson.set(Row.Name, std::move(K));
  }
  Timing.set("kernels", std::move(KernelsJson));
  Timing.set("page_load_ops_per_sec", OpsPerSec);
  Doc.set("timing", std::move(Timing));

  if (ReportPath) {
    std::string Out;
    obs::JsonReporter(Out).emit(Doc);
    std::ofstream File(ReportPath, std::ios::binary | std::ios::trunc);
    File.write(Out.data(), static_cast<std::streamsize>(Out.size()));
    if (!File) {
      std::fprintf(stderr, "error: cannot write %s\n", ReportPath);
      return 1;
    }
    std::printf("report: %zu bytes -> %s\n", Out.size(), ReportPath);
  }

  if (Failures) {
    std::printf("\nFAIL: %d gate(s) broken\n", Failures);
    return 1;
  }
  std::printf("\nOK: epoch fast path >= 0.9, frontier reconciled\n");
  return 0;
}

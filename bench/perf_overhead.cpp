//===- bench/perf_overhead.cpp - Instrumentation overhead ---------------------===//
//
// Paper Sec. 6 "Performance": WebRacer handled pages with tens of
// thousands of operations in under a minute, but heavy JavaScript paid a
// ~500x slowdown vs JIT execution because only the interpreter was
// instrumented. Our substrate has no JIT, so the comparable measurements
// are (a) the interpreter running SunSpider-style kernels with
// instrumentation hooks on vs off, and (b) end-to-end page-load
// throughput in operations/second.
//
//===----------------------------------------------------------------------===//

#include "analysis/Scenarios.h"
#include "detect/RaceDetector.h"
#include "js/Interpreter.h"
#include "js/Parser.h"
#include "js/StdLib.h"
#include "sites/Corpus.h"
#include "sites/CorpusRunner.h"
#include "webracer/Session.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

using namespace wr;

namespace {

const char *kernelSource(int Kernel) {
  switch (Kernel) {
  case 0: // controlflow-recursive (fib).
    return "function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }"
           "var result = fib(16);";
  case 1: // math-partial-sums.
    return "var s = 0;"
           "for (var i = 1; i <= 5000; i++) {"
           "  s += 1 / (i * i) + Math.sqrt(i) - Math.floor(Math.sqrt(i));"
           "}"
           "var result = s;";
  case 2: // string-base64-ish: repeated string building.
    return "var s = '';"
           "for (var i = 0; i < 400; i++) { s += 'ab'; }"
           "var n = 0;"
           "for (var j = 0; j < s.length; j += 7) { n += s.charCodeAt(j); }"
           "var result = n;";
  default: // access-nsieve-ish: array sieve.
    return "var limit = 3000;"
           "var sieve = Array(limit);"
           "var count = 0;"
           "for (var i = 2; i < limit; i++) {"
           "  if (!sieve[i]) {"
           "    count++;"
           "    for (var k = i + i; k < limit; k += i) sieve[k] = true;"
           "  }"
           "}"
           "var result = count;";
  }
}

/// Hooks that drive a real race detector (the instrumented
/// configuration). Alternating operation ids make the detector exercise
/// its CHC path the way a page with two concurrent scripts would.
class DetectorHooks final : public js::JsHooks {
public:
  DetectorHooks() : Detector(Hb, Interner) {
    OpId A = Hb.addOperation(Operation());
    OpId B = Hb.addOperation(Operation());
    Hb.addEdge(A, B, HbRule::RProgram);
    Ops[0] = A;
    Ops[1] = B;
  }

  void onVarRead(js::Env *Scope, std::string_view Name,
                 AccessOrigin Origin) override {
    record(AccessKind::Read, Scope->containerId(), Name, Origin);
  }
  void onVarWrite(js::Env *Scope, std::string_view Name,
                  AccessOrigin Origin) override {
    record(AccessKind::Write, Scope->containerId(), Name, Origin);
  }
  void onPropRead(js::Object *Obj, std::string_view Name,
                  AccessOrigin Origin) override {
    record(AccessKind::Read, Obj->containerId(), Name, Origin);
  }
  void onPropWrite(js::Object *Obj, std::string_view Name,
                   AccessOrigin Origin) override {
    record(AccessKind::Write, Obj->containerId(), Name, Origin);
  }

private:
  void record(AccessKind Kind, ContainerId Container,
              std::string_view Name, AccessOrigin Origin) {
    Access A;
    A.Kind = Kind;
    A.Origin = Origin;
    A.Op = Ops[Toggle ^= 1];
    A.Loc = Interner.internVar(Container, Name);
    Detector.onMemoryAccess(A);
  }

  HbGraph Hb;
  LocationInterner Interner;
  detect::RaceDetector Detector;
  OpId Ops[2];
  unsigned Toggle = 0;
};

void runKernel(int Kernel, bool Instrumented) {
  js::Heap Heap;
  js::Env *Global = Heap.allocEnv(nullptr);
  js::Interpreter Interp(Heap, Global);
  js::installStdLib(Interp, 1);
  DetectorHooks Hooks;
  if (Instrumented)
    Interp.setHooks(&Hooks);
  js::ParseResult R = js::Parser::parseProgram(kernelSource(Kernel));
  js::Completion C = Interp.runProgram(*R.Ast);
  benchmark::DoNotOptimize(C.V);
}

void BM_Kernel(benchmark::State &State) {
  int Kernel = static_cast<int>(State.range(0));
  bool Instrumented = State.range(1) != 0;
  for (auto _ : State)
    runKernel(Kernel, Instrumented);
  State.SetLabel(Instrumented ? "instrumented" : "bare");
}
BENCHMARK(BM_Kernel)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// End-to-end page throughput: operations per second through the full
/// pipeline (parse + execute + detect + explore).
void BM_PageLoadOpsPerSecond(benchmark::State &State) {
  sites::SiteSpec Spec;
  Spec.Name = "PerfSite";
  Spec.Patterns = {
      {sites::PatternKind::VariableNoiseBenign, 50},
      {sites::PatternKind::HoverMenuNoiseBenign, 30},
      {sites::PatternKind::GomezMonitorHarmful, 10},
      {sites::PatternKind::HtmlPollingBenign, 20},
  };
  sites::GeneratedSite Site = sites::buildSite(Spec);
  webracer::SessionOptions Opts;
  uint64_t TotalOps = 0;
  for (auto _ : State) {
    sites::SiteRunStats Stats = sites::runSite(Site, Opts, 42);
    TotalOps += Stats.Stats.Operations;
    benchmark::DoNotOptimize(Stats.Raw.total());
  }
  State.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalOps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageLoadOpsPerSecond)->Unit(benchmark::kMillisecond);

/// Epoch fast-path effectiveness on the paper's fig1-fig5 pages: the
/// fraction of ordering checks the detector answers from its epoch/pair
/// caches instead of the HB oracle. The LocId refactor's perf claim rests
/// on this staying high, so the run aborts if the rate drops below 90%.
void BM_FigCorpusEpochHitRate(benchmark::State &State) {
  uint64_t Epoch = 0, Chc = 0, DetectUs = 0, DetectEntries = 0;
  for (auto _ : State) {
    Epoch = Chc = DetectUs = DetectEntries = 0;
    for (const analysis::PageSpec &Page : analysis::figurePages()) {
      webracer::SessionOptions Opts;
      Opts.Browser.Seed = 7;
      webracer::Session S(Opts);
      S.network().addResource(Page.EntryUrl, Page.Html, 10);
      for (const analysis::PageResource &R : Page.Resources)
        S.network().addResource(R.Url, R.Content, R.LatencyUs);
      webracer::SessionResult Result = S.run(Page.EntryUrl);
      Epoch += Result.Stats.EpochHits;
      Chc += Result.Stats.ChcQueries;
      const obs::PhaseStat &D = Result.Stats.Phases[obs::Phase::Detect];
      DetectUs += D.VirtualUs;
      DetectEntries += D.Entries;
    }
  }
  double Rate = Epoch + Chc
                    ? static_cast<double>(Epoch) /
                          static_cast<double>(Epoch + Chc)
                    : 0.0;
  State.counters["epoch_hit_rate"] = Rate;
  State.counters["chc_queries"] =
      benchmark::Counter(static_cast<double>(Chc));
  State.counters["detect_virtual_us"] =
      benchmark::Counter(static_cast<double>(DetectUs));
  State.counters["detect_entries"] =
      benchmark::Counter(static_cast<double>(DetectEntries));
  if (Rate < 0.9) {
    std::fprintf(stderr,
                 "FATAL: epoch fast-path hit rate %.3f < 0.9 on the fig "
                 "corpus (epoch_hits=%llu, chc_queries=%llu)\n",
                 Rate, static_cast<unsigned long long>(Epoch),
                 static_cast<unsigned long long>(Chc));
    std::abort();
  }
}
BENCHMARK(BM_FigCorpusEpochHitRate)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

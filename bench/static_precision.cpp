//===- bench/static_precision.cpp - Guard-analysis precision gate -------------===//
//
// The precision gate for the flow-sensitive static analyzer (ISSUE 6):
//
//  1. Recall stays perfect where it must: on the five figure pages every
//     dynamically observed race is still predicted (recall 1.0), and
//     each page produces at least one dynamic race to validate against -
//     guard analysis must never *lose* a prediction.
//
//  2. The deliberate false-positive page is still predicted, still
//     dynamically refuted, and now classified guarded-one-side: the
//     writer is under `if (window.neverSet)`, the reader is bare.
//
//  3. Across the corpus, guard analysis explains away a measured margin
//     of false positives: predictions that are guarded on BOTH sides
//     and have no dynamic counterpart (refuted_by_guards). Every site
//     carries one dead-guard pattern, so the gate asserts the count is
//     non-zero and covers at least half the sites run.
//
// Usage: static_precision [--quick]   (--quick runs a 25-site corpus)
//
//===----------------------------------------------------------------------===//

#include "analysis/CrossCheck.h"
#include "sites/CorpusRunner.h"

#include <cstdio>
#include <cstring>

using namespace wr;
using namespace wr::analysis;

namespace {

void printPrecision(const char *Name, const StaticPrecision &P) {
  std::printf("%-16s predicted %llu, confirmed %llu, refuted %llu, "
              "refuted-by-guards %llu\n",
              Name, static_cast<unsigned long long>(P.Predicted),
              static_cast<unsigned long long>(P.Confirmed),
              static_cast<unsigned long long>(P.Refuted),
              static_cast<unsigned long long>(P.RefutedByGuards));
  static const GuardClass Classes[3] = {GuardClass::Unguarded,
                                        GuardClass::GuardedOneSide,
                                        GuardClass::GuardedBothSides};
  for (GuardClass C : Classes) {
    const GuardClassCounts &N = P.ByClass[static_cast<size_t>(C)];
    std::printf("  %-22s %4llu / %4llu / %4llu "
                "(predicted/confirmed/refuted)\n",
                toString(C), static_cast<unsigned long long>(N.Predicted),
                static_cast<unsigned long long>(N.Confirmed),
                static_cast<unsigned long long>(N.Refuted));
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;

  std::printf("== Static precision gate (guard analysis) ==\n\n");
  int Failures = 0;

  // Gate 1: figure-page recall must stay 1.0, with real dynamic races
  // to measure it against.
  for (const PageSpec &Page : figurePages()) {
    CrossCheckResult R = crossCheck(Page);
    if (R.missedCount() != 0) {
      std::printf("FAIL: %s missed %zu dynamically observed race(s)\n",
                  R.Name.c_str(), R.missedCount());
      std::printf("%s\n", formatReport(R).c_str());
      ++Failures;
    }
    if (R.dynamicCount() == 0) {
      std::printf("FAIL: %s produced no dynamic races to validate "
                  "against\n",
                  R.Name.c_str());
      ++Failures;
    }
    std::printf("%-16s recall %s (%zu dynamic, %zu predicted)\n",
                R.Name.c_str(), R.missedCount() == 0 ? "1.00" : "MISS",
                R.dynamicCount(), R.predictedCount());
  }

  // Gate 2: the false-positive page is predicted, refuted, and its
  // prediction classifies guarded-one-side (writer guarded, reader not).
  CrossCheckResult Fp = crossCheck(falsePositivePage());
  if (Fp.predictedCount() == 0 || Fp.confirmedCount() != 0) {
    std::printf("FAIL: false-positive page expected >=1 refuted "
                "prediction, got %zu predicted / %zu confirmed\n",
                Fp.predictedCount(), Fp.confirmedCount());
    ++Failures;
  }
  bool HasOneSide = false;
  for (const PredictedRace &P : Fp.Refuted)
    if (P.Class == GuardClass::GuardedOneSide)
      HasOneSide = true;
  if (!HasOneSide) {
    std::printf("FAIL: false-positive page prediction should classify "
                "guarded-one-side\n%s\n",
                formatReport(Fp).c_str());
    ++Failures;
  }
  std::printf("%-16s refuted %zu, guarded-one-side %s\n\n",
              Fp.Name.c_str(), Fp.Refuted.size(),
              HasOneSide ? "yes" : "NO");

  // Gate 3: corpus-wide, guard analysis refutes a measured margin of
  // static false positives (the dead-guard pattern on every site).
  const uint64_t Seed = 2012;
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  if (Quick)
    Corpus.resize(25);
  webracer::SessionOptions Opts;
  sites::CorpusStats Stats =
      sites::runCorpus(Corpus, Opts, Seed, /*Jobs=*/0);
  StaticPrecision Totals = Stats.staticTotals();
  printPrecision("corpus", Totals);

  size_t SitesRun = Stats.Sites.size();
  if (Totals.RefutedByGuards == 0) {
    std::printf("FAIL: guard analysis refuted no corpus false "
                "positives\n");
    ++Failures;
  }
  if (Totals.RefutedByGuards < SitesRun / 2) {
    std::printf("FAIL: refuted-by-guards %llu below margin %zu "
                "(sites/2)\n",
                static_cast<unsigned long long>(Totals.RefutedByGuards),
                SitesRun / 2);
    ++Failures;
  }
  std::printf("\nmargin: %llu guard-refuted false positives across %zu "
              "sites (floor %zu)\n",
              static_cast<unsigned long long>(Totals.RefutedByGuards),
              SitesRun, SitesRun / 2);

  if (Failures) {
    std::printf("RESULT: %d FAILURE(S)\n", Failures);
    return 1;
  }
  std::printf("RESULT: OK (recall 1.0, guard margin held)\n");
  return 0;
}

//===- bench/fig2_form_race.cpp - Reproduce Figure 2 ---------------------------===//
//
// Paper Fig. 2 (southwest.com): a script sets a search box's value as a
// hint; a user who types before the script runs loses their input. This
// harness runs the page across schedules where the user types before or
// after the hint script, showing (a) the input is really lost in the bad
// schedule and (b) the race is detected in every schedule and survives
// the form filter.
//
//===----------------------------------------------------------------------===//

#include "detect/Filters.h"
#include "detect/RaceDetector.h"
#include "runtime/Browser.h"

#include <cstdio>

using namespace wr;
using namespace wr::rt;
using namespace wr::detect;

namespace {

struct Outcome {
  std::string FinalValue;
  bool RaceDetected = false;
  bool SurvivesFilter = false;
};

// TypeEarly: inject the typing as soon as the box exists (mid page-load),
// modeling a user on a slow connection interacting with the partially
// rendered page.
Outcome runSchedule(bool TypeEarly, bool Guarded) {
  Browser B{BrowserOptions()};
  RaceDetector D(B.hb(), B.interner());
  B.addSink(&D);
  const char *Script =
      Guarded ? "<script src=\"hint.js\"></script>"
              : "<script src=\"hint2.js\"></script>";
  B.network().addResource("index.html",
                          std::string("<input type=\"text\" "
                                      "id=\"depart\" />") +
                              Script,
                          10);
  B.network().addResource(
      "hint.js",
      "var f = document.getElementById('depart');"
      "if (f.value == '') { f.value = 'City of Departure'; }",
      3000);
  B.network().addResource(
      "hint2.js",
      "document.getElementById('depart').value = 'City of Departure';",
      3000);
  B.loadPage("index.html");

  if (TypeEarly) {
    // Drive the loop until the box exists, then type immediately.
    while (B.loop().pendingTasks() > 0) {
      if (Element *Box = B.mainWindow()
                             ? B.mainWindow()->document().getElementById(
                                   "depart")
                             : nullptr) {
        B.userType(Box, "Boston");
        break;
      }
      B.loop().runOne();
    }
    B.runToQuiescence();
  } else {
    B.runToQuiescence();
    Element *Box = B.mainWindow()->document().getElementById("depart");
    B.userType(Box, "Boston");
    B.runToQuiescence();
  }

  Outcome O;
  O.FinalValue =
      B.mainWindow()->document().getElementById("depart")->formValue();
  std::vector<Race> Filtered = filterFormRaces(D.races());
  for (const Race &R : D.races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (R.Kind == RaceKind::Variable && Loc && Loc->Name == "value")
      O.RaceDetected = true;
  }
  for (const Race &R : Filtered) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (R.Kind == RaceKind::Variable && Loc && Loc->Name == "value")
      O.SurvivesFilter = true;
  }
  return O;
}

} // namespace

int main() {
  std::printf("== Fig. 2: form-field race (user input vs hint script) "
              "==\n\n");
  std::printf("%-28s | %-18s | %-8s | %s\n", "schedule", "final value",
              "detected", "survives form filter");
  struct Config {
    const char *Name;
    bool TypeEarly;
    bool Guarded;
  };
  for (Config C : {Config{"type after script", false, false},
                   Config{"type BEFORE script (bug!)", true, false},
                   Config{"guarded, type after", false, true},
                   Config{"guarded, type before", true, true}}) {
    Outcome O = runSchedule(C.TypeEarly, C.Guarded);
    std::printf("%-28s | %-18s | %-8s | %s\n", C.Name,
                O.FinalValue.c_str(), O.RaceDetected ? "yes" : "no",
                O.SurvivesFilter ? "yes" : "no (filtered)");
  }
  std::printf("\nexpected shape: the unguarded script erases \"Boston\" "
              "in the type-before schedule and its race survives the "
              "filter; the guarded script preserves input and is "
              "filtered.\n");
  return 0;
}

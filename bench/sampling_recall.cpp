//===- bench/sampling_recall.cpp - Sampling-layer gates ------------------------===//
//
// The sampling layer (src/sample) trades recall for access-path cost so
// the detector can run at production overheads. That trade is only
// admissible if it is measured and bounded, so this harness HARD-FAILS
// when any of the gates break:
//
//   * rate 1.0 is a true no-op: the corpus report document is
//     byte-identical with the sampler nominally on at rate 1.0 and with
//     sampling off entirely;
//   * attrition is never silent: for every strategy/rate cell the
//     wr_sampling counters reconcile exactly - seen == sampled + dropped,
//     the detector processed exactly the sampled accesses, and "seen"
//     equals the unsampled run's access count (sampling cannot change
//     what the instrumentation emits, only what the detector keeps);
//   * sampled reports are --jobs invariant: the same cell produces the
//     same bytes at --jobs 1 and --jobs 4;
//   * the adaptive strategy holds >= 90% corpus race recall while the
//     detector processes ~10% of the access stream (the ISSUE's
//     operating point);
//   * dropping accesses actually saves access-path time: per-location
//     sampling at rate 0.01 must run the synthetic detector stream well
//     under the unsampled time.
//
// Usage: sampling_recall [--quick] [report.json]
//
//   --quick        30-site corpus slice (the tier-1 CI configuration)
//   report.json    write the schema-1 report document
//
//===----------------------------------------------------------------------===//

#include "SamplingLab.h"

#include "detect/RaceDetector.h"
#include "mem/LocationInterner.h"
#include "obs/Json.h"
#include "obs/Reporter.h"
#include "sites/CorpusReport.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace wr;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Serializes the corpus report the CLI would write for \p Stats.
std::string reportBytes(const sites::CorpusStats &Stats) {
  std::string Out;
  obs::JsonReporter(Out).emit(sites::buildCorpusReport("fortune100", Stats));
  return Out;
}

/// Gate: byte-identical corpus reports between sampling off and the
/// nominal rate-1.0 configuration (which must not construct a sampler).
void checkRateOneIdentity(const std::vector<sites::GeneratedSite> &Corpus,
                          uint64_t Seed, int &Failures) {
  webracer::SessionOptions Off;
  std::string OffBytes =
      reportBytes(sites::runCorpus(Corpus, Off, Seed, 4));

  webracer::SessionOptions RateOne;
  RateOne.Detector.Sampling.Strategy = sample::SamplingStrategy::PerPair;
  RateOne.Detector.Sampling.Rate = 1.0;
  RateOne.Detector.Sampling.Seed = Seed;
  std::string OneBytes =
      reportBytes(sites::runCorpus(Corpus, RateOne, Seed, 4));

  if (OffBytes != OneBytes) {
    std::printf("FAIL: rate-1.0 corpus report differs from the unsampled "
                "report (%zu vs %zu bytes)\n",
                OneBytes.size(), OffBytes.size());
    ++Failures;
  }
}

/// Gate: the same sampled cell produces identical bytes at any job count.
void checkJobsInvariance(const std::vector<sites::GeneratedSite> &Corpus,
                         uint64_t Seed, int &Failures) {
  webracer::SessionOptions Opts;
  Opts.Detector.Sampling.Strategy = sample::SamplingStrategy::Adaptive;
  Opts.Detector.Sampling.Rate = 0.1;
  Opts.Detector.Sampling.Seed = Seed;
  std::string J1 = reportBytes(sites::runCorpus(Corpus, Opts, Seed, 1));
  std::string J4 = reportBytes(sites::runCorpus(Corpus, Opts, Seed, 4));
  if (J1 != J4) {
    std::printf("FAIL: sampled corpus report differs between --jobs 1 and "
                "--jobs 4\n");
    ++Failures;
  }
}

/// Gate: per-location sampling at rate 0.01 must cut the synthetic
/// access-path time to at most 60% of the unsampled run. The stream is
/// the hb_scaling detector workload shape: a small location pool, 70%
/// reads, two accesses per operation - large enough (100k accesses) that
/// the timer is far from its floor.
void checkAccessPathSavings(int &Failures, double &FullMs,
                            double &SampledMs) {
  constexpr size_t N = 50000;
  HbGraph G;
  G.reserveOperations(N);
  Operation Meta;
  OpId Prev = G.addOperation(Meta);
  for (size_t I = 1; I < N; ++I) {
    OpId Next = G.addOperation(Meta);
    G.addEdge(Prev, Next, HbRule::R1a_ParseOrder);
    Prev = Next;
  }
  LocationInterner Interner;
  constexpr size_t Pool = 512;
  std::vector<LocId> LocPool;
  LocPool.reserve(Pool);
  for (size_t I = 0; I < Pool; ++I) {
    char Name[16];
    std::snprintf(Name, sizeof(Name), "v%zu", I);
    LocPool.push_back(Interner.internVar(0, Name));
  }
  Rng AR(2012);
  std::vector<Access> Stream;
  Stream.reserve(N * 2);
  for (OpId Op = 1; Op <= N; ++Op) {
    for (int K = 0; K < 2; ++K) {
      Access A;
      A.Op = Op;
      A.Loc = LocPool[static_cast<size_t>(AR.nextBelow(Pool))];
      A.Kind = AR.nextDouble() < 0.7 ? AccessKind::Read : AccessKind::Write;
      Stream.push_back(A);
    }
  }

  double Best[2] = {1e30, 1e30};
  for (int Rep = 0; Rep < 3; ++Rep) {
    for (int Sampled = 0; Sampled < 2; ++Sampled) {
      detect::DetectorOptions Opts;
      if (Sampled) {
        Opts.Sampling.Strategy = sample::SamplingStrategy::PerLocation;
        Opts.Sampling.Rate = 0.01;
        Opts.Sampling.Seed = 7;
      }
      detect::RaceDetector D(G, Interner, Opts);
      auto Start = std::chrono::steady_clock::now();
      for (const Access &A : Stream)
        D.onMemoryAccess(A);
      Best[Sampled] = std::min(Best[Sampled], secondsSince(Start));
    }
  }
  FullMs = Best[0] * 1e3;
  SampledMs = Best[1] * 1e3;
  if (SampledMs > FullMs * 0.6) {
    std::printf("FAIL: per-location@0.01 access path %.2fms is not under "
                "60%% of the unsampled %.2fms\n",
                SampledMs, FullMs);
    ++Failures;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  const char *ReportPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else
      ReportPath = Argv[I];
  }

  constexpr uint64_t Seed = 2012;
  std::printf("== sampling_recall: recall and reconciliation gates ==\n");
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  size_t SiteCount = Quick ? 30 : Corpus.size();
  if (Corpus.size() > SiteCount)
    Corpus.resize(SiteCount);
  std::printf("corpus: %zu sites\n", Corpus.size());

  int Failures = 0;

  // The unsampled baseline every cell scores against.
  webracer::SessionOptions Base;
  sites::CorpusStats BaseStats = sites::runCorpus(Corpus, Base, Seed, 4);
  std::set<std::string> BaselineKeys = bench::raceKeys(BaseStats);
  uint64_t BaselineAccesses = BaseStats.aggregate().AccessesSeen;
  std::printf("baseline: %zu distinct races, %llu accesses\n",
              BaselineKeys.size(),
              static_cast<unsigned long long>(BaselineAccesses));

  // One gated cell per strategy at the ISSUE's 10% operating point.
  const sample::SamplingStrategy Strategies[] = {
      sample::SamplingStrategy::PerLocation,
      sample::SamplingStrategy::PerPair,
      sample::SamplingStrategy::Adaptive,
  };
  std::vector<bench::RecallCell> Cells;
  std::printf("\n%13s | %5s | %6s | %7s | %9s | %9s\n", "strategy", "rate",
              "recall", "matched", "sampled", "dropped");
  std::printf("--------------+-------+--------+---------+-----------+------"
              "----\n");
  for (sample::SamplingStrategy Strategy : Strategies) {
    sample::SamplingOptions S;
    S.Strategy = Strategy;
    S.Rate = 0.1;
    bench::RecallCell Cell =
        bench::runCell(Corpus, S, Seed, 4, BaselineKeys);
    std::printf("%13s | %5.2f | %6.3f | %3zu/%3zu | %9llu | %9llu\n",
                sample::toString(Strategy), Cell.Rate, Cell.Recall,
                Cell.MatchedRaces, Cell.BaselineRaces,
                static_cast<unsigned long long>(Cell.SampledAccesses),
                static_cast<unsigned long long>(Cell.DroppedAccesses));
    // Attrition reconciliation is exact for every strategy: the counters
    // partition, the detector processed exactly the sampled accesses,
    // and sampling did not change what the instrumentation emitted.
    if (!Cell.ReconcileOk) {
      std::printf("FAIL: %s seen %llu != sampled %llu + dropped %llu\n",
                  sample::toString(Strategy),
                  static_cast<unsigned long long>(Cell.SeenAccesses),
                  static_cast<unsigned long long>(Cell.SampledAccesses),
                  static_cast<unsigned long long>(Cell.DroppedAccesses));
      ++Failures;
    }
    if (Cell.DetectorAccesses != Cell.SampledAccesses) {
      std::printf("FAIL: %s detector processed %llu accesses but the "
                  "sampler admitted %llu\n",
                  sample::toString(Strategy),
                  static_cast<unsigned long long>(Cell.DetectorAccesses),
                  static_cast<unsigned long long>(Cell.SampledAccesses));
      ++Failures;
    }
    if (Cell.SeenAccesses != BaselineAccesses) {
      std::printf("FAIL: %s sampler saw %llu accesses but the unsampled "
                  "run emitted %llu\n",
                  sample::toString(Strategy),
                  static_cast<unsigned long long>(Cell.SeenAccesses),
                  static_cast<unsigned long long>(BaselineAccesses));
      ++Failures;
    }
    // The recall gate binds only the adaptive strategy - the blind
    // strategies are the frontier's comparison points, not the product
    // configuration.
    if (Strategy == sample::SamplingStrategy::Adaptive &&
        Cell.Recall < 0.9) {
      std::printf("FAIL: adaptive recall %.3f < 0.9 at rate 0.1\n",
                  Cell.Recall);
      ++Failures;
    }
    Cells.push_back(Cell);
  }

  std::printf("\nchecking rate-1.0 byte identity and --jobs invariance...\n");
  checkRateOneIdentity(Corpus, Seed, Failures);
  checkJobsInvariance(Corpus, Seed, Failures);

  double FullMs = 0, SampledMs = 0;
  checkAccessPathSavings(Failures, FullMs, SampledMs);
  std::printf("access path: unsampled %.2fms, per-location@0.01 %.2fms\n",
              FullMs, SampledMs);

  obs::Json Doc = obs::makeReportEnvelope("sampling_recall", "fortune100");
  Doc.set("quick", Quick);
  Doc.set("sites", static_cast<uint64_t>(Corpus.size()));
  Doc.set("baseline_races", static_cast<uint64_t>(BaselineKeys.size()));
  Doc.set("baseline_accesses", BaselineAccesses);
  obs::Json CellsJson = obs::Json::array();
  for (const bench::RecallCell &Cell : Cells) {
    obs::Json C = obs::Json::object();
    C.set("strategy", std::string(sample::toString(Cell.Strategy)));
    C.set("rate_ppm", static_cast<uint64_t>(Cell.Rate * 1e6 + 0.5));
    C.set("matched", static_cast<uint64_t>(Cell.MatchedRaces));
    C.set("found", static_cast<uint64_t>(Cell.FoundRaces));
    C.set("recall", Cell.Recall);
    C.set("seen", Cell.SeenAccesses);
    C.set("sampled", Cell.SampledAccesses);
    C.set("dropped", Cell.DroppedAccesses);
    CellsJson.push(std::move(C));
  }
  Doc.set("cells", std::move(CellsJson));
  obs::Json Timing = obs::Json::object();
  Timing.set("access_path_full_ms", FullMs);
  Timing.set("access_path_sampled_ms", SampledMs);
  Doc.set("timing", std::move(Timing));

  if (ReportPath) {
    std::string Out;
    obs::JsonReporter(Out).emit(Doc);
    std::ofstream File(ReportPath, std::ios::binary | std::ios::trunc);
    File.write(Out.data(), static_cast<std::streamsize>(Out.size()));
    if (!File) {
      std::fprintf(stderr, "error: cannot write %s\n", ReportPath);
      return 1;
    }
    std::printf("report: %zu bytes -> %s\n", Out.size(), ReportPath);
  }

  if (Failures) {
    std::printf("\nFAIL: %d gate(s) broken\n", Failures);
    return 1;
  }
  std::printf("\nOK: >=90%% adaptive recall at 10%% sampling, exact "
              "attrition reconciliation, rate-1.0 byte identity, --jobs "
              "invariance, access-path savings\n");
  return 0;
}

//===- bench/hb_scaling.cpp - HB index scaling gate ----------------------------===//
//
// The scalability wall the paper defers to future work (Sec. 5.2.1) is the
// cost of the happens-before oracle itself: an eager per-operation
// watermark vector is O(ops x chains) time and memory. This harness pins
// the arena-backed, copy-on-write clock index against that wall on
// synthetic web-execution-shaped pages at growing operation counts
// (1k/10k/50k ops), recording build time, clock bytes, and query counts,
// and HARD-FAILS when either gate breaks:
//
//   * clock memory must be at least 60% below the eager full-copy
//     representation (measured against a faithful reimplementation of the
//     pre-arena builder run over the identical DAG), and
//   * index build time must not regress against that full-copy builder
//     (1.25x headroom absorbs CI timer noise; the arena build is
//     typically several times faster).
//
// It also replays a corpus slice under both reachability strategies and
// requires byte-identical race descriptions - the memory optimization is
// only admissible if detection output is bit-for-bit unchanged.
//
// Usage: hb_scaling [--quick] [report.json]
//
//   --quick        1k/10k ops only (the tier-1 CI configuration)
//   report.json    write the schema-1 report document
//
//===----------------------------------------------------------------------===//

#include "detect/RaceDetector.h"
#include "detect/Report.h"
#include "hb/HbGraph.h"
#include "mem/LocationInterner.h"
#include "obs/Json.h"
#include "obs/Reporter.h"
#include "sites/Corpus.h"
#include "sites/CorpusRunner.h"
#include "support/Rng.h"
#include "support/Watermarks.h"
#include "webracer/Session.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace wr;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Builds a web-like DAG: a main parse chain, periodic dispatch chains
/// that fork off a random creator, and a fraction of fully concurrent
/// operations (user events). Mirrors bench/ablation_hb_repr.
void buildWebDag(HbGraph &G, size_t N, Rng &R) {
  Operation Meta;
  OpId ChainTail = G.addOperation(Meta);
  std::vector<OpId> All = {ChainTail};
  while (G.numOperations() < N) {
    double P = R.nextDouble();
    if (P < 0.6) {
      OpId Next = G.addOperation(Meta);
      G.addEdge(ChainTail, Next, HbRule::R1a_ParseOrder);
      ChainTail = Next;
      All.push_back(Next);
    } else if (P < 0.9) {
      OpId From = All[static_cast<size_t>(R.nextBelow(All.size()))];
      OpId Prev = G.addOperation(Meta);
      G.addEdge(From, Prev, HbRule::R8_TargetCreated);
      All.push_back(Prev);
      for (int H = 0; H < 3 && G.numOperations() < N; ++H) {
        OpId Handler = G.addOperation(Meta);
        G.addEdge(Prev, Handler, HbRule::RA_DispatchChain);
        Prev = Handler;
        All.push_back(Handler);
      }
    } else {
      All.push_back(G.addOperation(Meta));
    }
  }
}

/// Faithful reimplementation of the pre-arena clock builder (one eagerly
/// materialized std::vector<uint32_t> per operation plus a (chain, pos)
/// record), driven by the graph's predecessor lists. This is the memory
/// and build-time baseline of both gates.
struct FullCopyClockIndex {
  struct Entry {
    uint32_t Chain = 0;
    uint32_t Pos = 0;
  };
  std::vector<std::vector<uint32_t>> Clocks;
  std::vector<Entry> Where;
  std::vector<OpId> ChainTails;

  void build(const HbGraph &G) {
    size_t N = G.numOperations();
    Clocks.reserve(N);
    Where.reserve(N);
    for (OpId Op = 1; Op <= N; ++Op) {
      std::vector<uint32_t> Clock;
      uint32_t PickedChain = UINT32_MAX;
      uint32_t PickedPos = 0;
      for (OpId P : G.predecessors(Op)) {
        const std::vector<uint32_t> &PClock = Clocks[P - 1];
        if (PClock.size() > Clock.size())
          Clock.resize(PClock.size(), 0);
        for (size_t I = 0; I < PClock.size(); ++I)
          Clock[I] = std::max(Clock[I], PClock[I]);
        if (PickedChain == UINT32_MAX &&
            ChainTails[Where[P - 1].Chain] == P) {
          PickedChain = Where[P - 1].Chain;
          PickedPos = Where[P - 1].Pos + 1;
        }
      }
      if (PickedChain == UINT32_MAX) {
        PickedChain = static_cast<uint32_t>(ChainTails.size());
        PickedPos = 1;
        ChainTails.push_back(Op);
      } else {
        ChainTails[PickedChain] = Op;
      }
      if (Clock.size() <= PickedChain)
        Clock.resize(PickedChain + 1, 0);
      Clock[PickedChain] = PickedPos;
      Where.push_back({PickedChain, PickedPos});
      Clocks.push_back(std::move(Clock));
    }
  }

  uint64_t bytes() const {
    uint64_t Total = 0;
    for (const std::vector<uint32_t> &C : Clocks)
      Total += sizeof(std::vector<uint32_t>) + C.size() * sizeof(uint32_t);
    // Both sides of the reduction gate count their chain-tail table
    // (HbGraph::clockBytes() includes it too).
    return Total + Where.size() * sizeof(Entry) +
           ChainTails.size() * sizeof(OpId);
  }

  uint32_t watermark(OpId Op, uint32_t Chain) const {
    const std::vector<uint32_t> &C = Clocks[Op - 1];
    return Chain < C.size() ? C[Chain] : 0;
  }
};

struct SizeRow {
  size_t Ops = 0;
  size_t Chains = 0;
  uint64_t ClockBytes = 0;
  uint64_t FullCopyBytes = 0;
  double ReductionPct = 0;
  uint64_t SharedClocks = 0;
  uint64_t ClockMerges = 0;
  double BuildMs = 0;
  double FullCopyBuildMs = 0;
  uint64_t Queries = 0;
  uint64_t Positive = 0;
};

/// Runs one size point: builds the DAG, times arena-index and full-copy
/// construction (min of \p Reps fresh builds each), cross-checks the
/// watermarks, and runs a fixed query workload.
SizeRow runSize(size_t N, int Reps, int &Failures) {
  SizeRow Row;
  Row.Ops = N;

  double BestBuild = 1e30, BestRef = 1e30;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    HbGraph G;
    G.reserveOperations(N);
    Rng R(99);
    buildWebDag(G, N, R);

    // Arena index build: one query against the last op materializes every
    // clock (construction is lazy but strictly in id order).
    auto Start = std::chrono::steady_clock::now();
    bool Reach = G.reachesVectorClock(1, static_cast<OpId>(N));
    double BuildSecs = secondsSince(Start);
    BestBuild = std::min(BestBuild, BuildSecs);

    FullCopyClockIndex Ref;
    Start = std::chrono::steady_clock::now();
    Ref.build(G);
    double RefSecs = secondsSince(Start);
    BestRef = std::min(BestRef, RefSecs);

    if (Rep != 0)
      continue;
    Row.Chains = G.numChains();
    Row.ClockBytes = G.clockBytes();
    Row.FullCopyBytes = Ref.bytes();
    Row.SharedClocks = G.sharedClocks();
    Row.ClockMerges = G.clockMerges();
    if (G.numChains() != Ref.ChainTails.size()) {
      std::printf("FAIL: chain decomposition diverged at %zu ops "
                  "(arena %zu chains, full-copy %zu)\n",
                  N, G.numChains(), Ref.ChainTails.size());
      ++Failures;
    }
    // The shared clocks must read back the exact watermarks the eager
    // builder materializes.
    Rng WR(123);
    size_t Checks = std::min<size_t>(N * 4, 20000);
    for (size_t I = 0; I < Checks; ++I) {
      OpId Op = static_cast<OpId>(
          WR.nextInRange(1, static_cast<int64_t>(N)));
      uint32_t Chain = static_cast<uint32_t>(
          WR.nextBelow(static_cast<uint64_t>(Row.Chains)));
      if (G.clockWatermark(Op, Chain) != Ref.watermark(Op, Chain)) {
        std::printf("FAIL: watermark mismatch at op %u chain %u "
                    "(%zu ops)\n",
                    Op, Chain, N);
        ++Failures;
        break;
      }
    }
    // Fixed query workload, counted for the report; VC and DFS must
    // agree on every answer.
    Rng QR(7);
    uint64_t Positive = 0, Mismatch = 0;
    for (int Q = 0; Q < 4096; ++Q) {
      OpId B = static_cast<OpId>(QR.nextInRange(
          static_cast<int64_t>(N / 2), static_cast<int64_t>(N)));
      OpId A = static_cast<OpId>(QR.nextInRange(1, static_cast<int64_t>(B)));
      bool Vc = G.reachesVectorClock(A, B);
      Positive += Vc;
      Mismatch += Vc != G.reachesDfs(A, B);
    }
    Row.Queries = 4096;
    Row.Positive = Positive;
    if (Mismatch) {
      std::printf("FAIL: %llu strategy mismatches at %zu ops\n",
                  static_cast<unsigned long long>(Mismatch), N);
      ++Failures;
    }
    (void)Reach;
  }
  Row.BuildMs = BestBuild * 1e3;
  Row.FullCopyBuildMs = BestRef * 1e3;
  Row.ReductionPct =
      Row.FullCopyBytes
          ? 100.0 * (1.0 - static_cast<double>(Row.ClockBytes) /
                               static_cast<double>(Row.FullCopyBytes))
          : 0.0;
  return Row;
}

/// One size point of the detector access-path benchmark: the adaptive
/// epoch representation vs the ForceReadVectors debug pin over an
/// identical synthetic access stream on the same DAG.
struct DetectorRow {
  size_t Ops = 0;
  uint64_t Accesses = 0;
  uint64_t Races = 0;
  double AdaptiveMs = 0;
  double ForcedMs = 0;
  uint64_t AdaptiveBytes = 0;
  uint64_t ForcedBytes = 0;
  uint64_t Inflations = 0;
  uint64_t Deflations = 0;
  double EpochReadRate = 0;
};

/// Streams a web-shaped access workload (a small location pool, 70%
/// reads, ops in id order) through the detector twice - adaptive epochs
/// vs ForceReadVectors - on the same DAG, timing the access path and
/// gating: identical race output, zero generic oracle queries, every
/// read on the epoch path, and no access-path time regression (1.5x
/// headroom for CI timer noise on sub-ms slices).
DetectorRow runDetectorSize(size_t N, int Reps, int &Failures) {
  DetectorRow Row;
  Row.Ops = N;

  // Pre-generate the access stream so both variants replay the exact
  // same sequence and the generator's cost stays out of the timing.
  HbGraph G;
  G.reserveOperations(N);
  Rng R(99);
  buildWebDag(G, N, R);
  LocationInterner Interner;
  size_t Pool = std::max<size_t>(N / 50, 8);
  std::vector<LocId> LocPool;
  LocPool.reserve(Pool);
  for (size_t I = 0; I < Pool; ++I)
    LocPool.push_back(
        Interner.internVar(0, "v" + std::to_string(I)));
  Rng AR(2012);
  std::vector<Access> Stream;
  Stream.reserve(N * 2);
  for (OpId Op = 1; Op <= N; ++Op) {
    for (int K = 0; K < 2; ++K) {
      Access A;
      A.Op = Op;
      A.Loc = LocPool[static_cast<size_t>(AR.nextBelow(Pool))];
      A.Kind = AR.nextDouble() < 0.7 ? AccessKind::Read : AccessKind::Write;
      Stream.push_back(A);
    }
  }
  Row.Accesses = Stream.size();

  double Best[2] = {1e30, 1e30};
  uint64_t RaceCount[2] = {0, 0};
  for (int Rep = 0; Rep < Reps; ++Rep) {
    for (int Forced = 0; Forced < 2; ++Forced) {
      detect::DetectorOptions Opts;
      Opts.ForceReadVectors = Forced != 0;
      detect::RaceDetector D(G, Interner, Opts);
      auto Start = std::chrono::steady_clock::now();
      for (const Access &A : Stream)
        D.onMemoryAccess(A);
      Best[Forced] = std::min(Best[Forced], secondsSince(Start));
      if (Rep != 0)
        continue;
      RaceCount[Forced] = D.races().size();
      if (Forced) {
        Row.ForcedBytes = D.detectorBytes();
        continue;
      }
      Row.Races = D.races().size();
      Row.AdaptiveBytes = D.detectorBytes();
      Row.Inflations = D.readInflations();
      Row.Deflations = D.readDeflations();
      Row.EpochReadRate =
          D.readsSeen()
              ? static_cast<double>(D.epochReads()) /
                    static_cast<double>(D.readsSeen())
              : 1.0;
      if (D.chcQueries() != 0) {
        std::printf("FAIL: %llu generic oracle queries under the epoch "
                    "oracle at %zu ops\n",
                    static_cast<unsigned long long>(D.chcQueries()), N);
        ++Failures;
      }
      if (Row.EpochReadRate < 0.9) {
        std::printf("FAIL: epoch read rate %.3f < 0.9 at %zu ops\n",
                    Row.EpochReadRate, N);
        ++Failures;
      }
    }
  }
  Row.AdaptiveMs = Best[0] * 1e3;
  Row.ForcedMs = Best[1] * 1e3;
  if (RaceCount[0] != RaceCount[1]) {
    std::printf("FAIL: adaptive (%llu) and forced-vector (%llu) race "
                "counts differ at %zu ops\n",
                static_cast<unsigned long long>(RaceCount[0]),
                static_cast<unsigned long long>(RaceCount[1]), N);
    ++Failures;
  }
  // The adaptive representation can only shed storage relative to the
  // always-inflated pin.
  if (Row.AdaptiveBytes > Row.ForcedBytes) {
    std::printf("FAIL: adaptive detector bytes %llu exceed forced-vector "
                "bytes %llu at %zu ops\n",
                static_cast<unsigned long long>(Row.AdaptiveBytes),
                static_cast<unsigned long long>(Row.ForcedBytes), N);
    ++Failures;
  }
  if (Row.AdaptiveMs > Row.ForcedMs * 1.5) {
    std::printf("FAIL: adaptive access path %.2fms regressed past "
                "forced-vector %.2fms at %zu ops\n",
                Row.AdaptiveMs, Row.ForcedMs, N);
    ++Failures;
  }
  return Row;
}

/// One row of the watermark-kernel micro-table: throughput of the three
/// support/Watermarks.h primitives at one clock width, under whichever
/// tier (avx2 / neon / swar) this build compiled in.
struct KernelRow {
  size_t Width = 0; // Watermarks per clock.
  double JoinBytesPerNs = 0;
  double DominatedBytesPerNs = 0;
  double AllZeroBytesPerNs = 0;
};

/// Times one primitive over \p Iters passes of a \p Width-entry array and
/// returns bytes processed per nanosecond (min-of-3 to shed scheduler
/// noise). The workload alternates two source patterns so the branchy
/// SWAR fast paths (equal words, zero words) cannot short-circuit every
/// iteration.
template <typename Fn>
double kernelBytesPerNs(size_t Width, size_t Iters, Fn &&Body) {
  double Best = 1e30;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    uint64_t Guard = 0;
    for (size_t I = 0; I < Iters; ++I)
      Guard += Body(I);
    double Secs = secondsSince(Start);
    // Keep the accumulated result observable so the loop cannot be
    // discarded as dead code.
    if (Guard == UINT64_MAX)
      std::printf("unreachable\n");
    Best = std::min(Best, Secs);
  }
  double Bytes =
      static_cast<double>(Width * sizeof(uint32_t)) * static_cast<double>(Iters);
  return Best > 0 ? Bytes / (Best * 1e9) : 0;
}

/// Builds the micro-table: for each clock width, measured bytes/ns of
/// join, dominated, and all-zero over randomized watermark arrays.
std::vector<KernelRow> runKernelTable() {
  std::vector<KernelRow> Rows;
  Rng R(77);
  for (size_t Width : {8u, 32u, 128u, 512u}) {
    std::vector<uint32_t> A(Width), B(Width), Dst(Width);
    for (size_t I = 0; I < Width; ++I) {
      A[I] = static_cast<uint32_t>(R.next()) % 1000;
      B[I] = static_cast<uint32_t>(R.next()) % 1000;
    }
    size_t Iters = 4u * 1024u * 1024u / Width; // ~4M watermarks per kernel.
    KernelRow Row;
    Row.Width = Width;
    Row.JoinBytesPerNs = kernelBytesPerNs(Width, Iters, [&](size_t I) {
      // Alternate sources so Dst keeps changing and the skip paths fire
      // on only half the passes.
      support::watermarksJoinMax(Dst.data(),
                                 (I & 1 ? B : A).data(), Width);
      return static_cast<uint64_t>(Dst[0]);
    });
    Row.DominatedBytesPerNs = kernelBytesPerNs(Width, Iters, [&](size_t I) {
      return static_cast<uint64_t>(support::watermarksDominated(
          (I & 1 ? A : B).data(), Dst.data(), Width));
    });
    Row.AllZeroBytesPerNs = kernelBytesPerNs(Width, Iters, [&](size_t I) {
      return static_cast<uint64_t>(
          support::watermarksAllZero((I & 1 ? A : Dst).data(), Width));
    });
    Rows.push_back(Row);
  }
  return Rows;
}

/// Aggregated wr_epochs figures of the parity sweep's default-engine runs.
struct ParityStats {
  uint64_t Races = 0;
  uint64_t Reads = 0;
  uint64_t EpochReads = 0;
  uint64_t TrackedLocations = 0;
  uint64_t ReadVectorLocations = 0;
  uint64_t ChcQueries = 0;
};

/// Race-output byte-identity: the same pages under DfsMemo, VectorClock,
/// and VectorClock + ForceReadVectors must describe the identical raw and
/// filtered races and report the same filter attrition.
ParityStats paritySites(size_t Sites, int &Failures) {
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(2012);
  if (Corpus.size() > Sites)
    Corpus.resize(Sites);
  ParityStats Stats;
  for (const sites::GeneratedSite &Site : Corpus) {
    std::string Descriptions[3];
    for (int Variant = 0; Variant < 3; ++Variant) {
      webracer::SessionOptions Opts;
      Opts.Detector.Engine =
          Variant == 0 ? EngineKind::HbDfs : EngineKind::Hb;
      Opts.Detector.ForceReadVectors = Variant == 2;
      Opts.Browser.Seed = 42;
      webracer::Session S(Opts);
      S.network().addResource(Site.IndexUrl, Site.Html, 10);
      for (const sites::SiteResource &R : Site.Resources)
        S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                          R.MaxLatencyUs);
      webracer::SessionResult Result = S.run(Site.IndexUrl);
      const obs::FilterAttrition &At = Result.Stats.Attrition;
      Descriptions[Variant] =
          detect::describeRaces(Result.RawRaces, S.browser().hb()) + "\n" +
          detect::describeRaces(Result.FilteredRaces, S.browser().hb()) +
          "\nattrition " + std::to_string(At.Input) + " " +
          std::to_string(At.NotFormField) + " " +
          std::to_string(At.PriorReadGuard) + " " +
          std::to_string(At.MultiDispatch) + " " +
          std::to_string(At.Kept);
      if (Variant != 1)
        continue;
      Stats.Races += Result.RawRaces.size();
      Stats.Reads += Result.Stats.ReadsSeen;
      Stats.EpochReads += Result.Stats.EpochReads;
      Stats.TrackedLocations += Result.Stats.TrackedLocations;
      Stats.ReadVectorLocations += Result.Stats.ReadVectorLocations;
      Stats.ChcQueries += Result.Stats.ChcQueries;
    }
    if (Descriptions[0] != Descriptions[1]) {
      std::printf("FAIL: race output differs between strategies on %s\n",
                  Site.Name.c_str());
      ++Failures;
    }
    if (Descriptions[1] != Descriptions[2]) {
      std::printf("FAIL: race output differs between adaptive and forced "
                  "read vectors on %s\n",
                  Site.Name.c_str());
      ++Failures;
    }
  }
  return Stats;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  const char *ReportPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else
      ReportPath = Argv[I];
  }

  std::printf("== hb_scaling: arena clock index vs eager full copies ==\n");
  std::vector<size_t> Sizes = {1000, 10000};
  if (!Quick)
    Sizes.push_back(50000);

  int Failures = 0;
  std::vector<SizeRow> Rows;
  std::printf("\n%7s | %7s | %11s | %12s | %6s | %9s | %9s\n", "ops",
              "chains", "clock bytes", "eager bytes", "redn", "build ms",
              "eager ms");
  std::printf("--------+---------+-------------+--------------+--------+--"
              "---------+----------\n");
  for (size_t N : Sizes) {
    SizeRow Row = runSize(N, 3, Failures);
    std::printf("%7zu | %7zu | %11llu | %12llu | %5.1f%% | %9.2f | %9.2f\n",
                Row.Ops, Row.Chains,
                static_cast<unsigned long long>(Row.ClockBytes),
                static_cast<unsigned long long>(Row.FullCopyBytes),
                Row.ReductionPct, Row.BuildMs, Row.FullCopyBuildMs);
    // Gate 1: >= 60% clock-memory reduction at every size.
    if (Row.ReductionPct < 60.0) {
      std::printf("FAIL: clock-memory reduction %.1f%% < 60%% at %zu ops\n",
                  Row.ReductionPct, Row.Ops);
      ++Failures;
    }
    // Gate 2: no build-time regression against the eager builder (1.25x
    // headroom for CI timer noise).
    if (Row.BuildMs > Row.FullCopyBuildMs * 1.25) {
      std::printf("FAIL: arena build %.2fms regressed past eager build "
                  "%.2fms at %zu ops\n",
                  Row.BuildMs, Row.FullCopyBuildMs, Row.Ops);
      ++Failures;
    }
    Rows.push_back(Row);
  }

  std::printf("\n== detector access path: adaptive epochs vs forced read "
              "vectors ==\n");
  std::printf("\n%7s | %9s | %8s | %8s | %10s | %10s | %9s\n", "ops",
              "accesses", "adpt ms", "frcd ms", "adpt bytes", "frcd bytes",
              "rd rate");
  std::printf("--------+-----------+----------+----------+------------+----"
              "--------+----------\n");
  std::vector<DetectorRow> DetRows;
  for (size_t N : Sizes) {
    DetectorRow Row = runDetectorSize(N, 3, Failures);
    std::printf("%7zu | %9llu | %8.2f | %8.2f | %10llu | %10llu | %8.3f\n",
                Row.Ops, static_cast<unsigned long long>(Row.Accesses),
                Row.AdaptiveMs, Row.ForcedMs,
                static_cast<unsigned long long>(Row.AdaptiveBytes),
                static_cast<unsigned long long>(Row.ForcedBytes),
                Row.EpochReadRate);
    DetRows.push_back(Row);
  }

  std::printf("\n== watermark kernels (%s tier): bytes/ns ==\n",
              support::watermarksIsa());
  std::printf("\n%7s | %9s | %9s | %9s\n", "width", "join", "dominated",
              "allzero");
  std::printf("--------+-----------+-----------+----------\n");
  std::vector<KernelRow> KernelRows = runKernelTable();
  for (const KernelRow &Row : KernelRows)
    std::printf("%7zu | %9.2f | %9.2f | %9.2f\n", Row.Width,
                Row.JoinBytesPerNs, Row.DominatedBytesPerNs,
                Row.AllZeroBytesPerNs);

  size_t ParityCount = Quick ? 12 : 25;
  std::printf("\nchecking race-output parity on %zu corpus sites "
              "(dfs / vc / vc+forced-vectors)...\n",
              ParityCount);
  ParityStats Parity = paritySites(ParityCount, Failures);
  std::printf("raw races compared: %llu\n",
              static_cast<unsigned long long>(Parity.Races));
  // Corpus gates for the adaptive representation: the common case must
  // stay O(1) per location (few locations ever inflate), reads must stay
  // on the epoch path, and nothing may escalate to a generic query.
  double InflatedPct =
      Parity.TrackedLocations
          ? 100.0 * static_cast<double>(Parity.ReadVectorLocations) /
                static_cast<double>(Parity.TrackedLocations)
          : 0.0;
  double CorpusReadRate =
      Parity.Reads ? static_cast<double>(Parity.EpochReads) /
                         static_cast<double>(Parity.Reads)
                   : 1.0;
  std::printf("corpus: %.1f%% locations inflated, %.3f epoch read rate, "
              "%llu chc queries\n",
              InflatedPct, CorpusReadRate,
              static_cast<unsigned long long>(Parity.ChcQueries));
  if (InflatedPct >= 10.0) {
    std::printf("FAIL: %.1f%% of corpus locations inflated a read vector "
                "(gate: < 10%%)\n",
                InflatedPct);
    ++Failures;
  }
  if (CorpusReadRate < 0.9) {
    std::printf("FAIL: corpus epoch read rate %.3f < 0.9\n", CorpusReadRate);
    ++Failures;
  }
  if (Parity.ChcQueries != 0) {
    std::printf("FAIL: %llu corpus CHC questions escalated to generic "
                "oracle queries under the epoch oracle\n",
                static_cast<unsigned long long>(Parity.ChcQueries));
    ++Failures;
  }

  obs::Json Doc = obs::makeReportEnvelope("hb_scaling", "webdag");
  Doc.set("quick", Quick);
  obs::Json RowsJson = obs::Json::array();
  for (const SizeRow &Row : Rows) {
    obs::Json R = obs::Json::object();
    R.set("ops", static_cast<uint64_t>(Row.Ops));
    R.set("chains", static_cast<uint64_t>(Row.Chains));
    R.set("clock_bytes", Row.ClockBytes);
    R.set("full_copy_bytes", Row.FullCopyBytes);
    R.set("reduction_pct", Row.ReductionPct);
    R.set("shared_clocks", Row.SharedClocks);
    R.set("clock_merges", Row.ClockMerges);
    R.set("queries", Row.Queries);
    R.set("positive", Row.Positive);
    RowsJson.push(std::move(R));
  }
  Doc.set("sizes", std::move(RowsJson));
  obs::Json DetJson = obs::Json::array();
  for (const DetectorRow &Row : DetRows) {
    obs::Json R = obs::Json::object();
    R.set("ops", static_cast<uint64_t>(Row.Ops));
    R.set("accesses", Row.Accesses);
    R.set("races", Row.Races);
    R.set("adaptive_bytes", Row.AdaptiveBytes);
    R.set("forced_bytes", Row.ForcedBytes);
    R.set("read_inflations", Row.Inflations);
    R.set("read_deflations", Row.Deflations);
    R.set("epoch_read_rate", Row.EpochReadRate);
    DetJson.push(std::move(R));
  }
  Doc.set("detector", std::move(DetJson));
  obs::Json ParityJson = obs::Json::object();
  ParityJson.set("sites", static_cast<uint64_t>(ParityCount));
  ParityJson.set("raw_races", Parity.Races);
  ParityJson.set("reads", Parity.Reads);
  ParityJson.set("epoch_reads", Parity.EpochReads);
  ParityJson.set("tracked_locations", Parity.TrackedLocations);
  ParityJson.set("read_vector_locations", Parity.ReadVectorLocations);
  Doc.set("parity", std::move(ParityJson));
  obs::Json Timing = obs::Json::object();
  // Kernel throughput is wall-clock, so it lands in the timing section
  // (excluded from byte-stability comparisons) tagged with the tier.
  {
    obs::Json Kernels = obs::Json::object();
    Kernels.set("isa", std::string(support::watermarksIsa()));
    for (const KernelRow &Row : KernelRows) {
      obs::Json K = obs::Json::object();
      K.set("join_bytes_per_ns", Row.JoinBytesPerNs);
      K.set("dominated_bytes_per_ns", Row.DominatedBytesPerNs);
      K.set("allzero_bytes_per_ns", Row.AllZeroBytesPerNs);
      Kernels.set("width_" + std::to_string(Row.Width), std::move(K));
    }
    Timing.set("watermark_kernels", std::move(Kernels));
  }
  for (const SizeRow &Row : Rows) {
    obs::Json T = obs::Json::object();
    T.set("build_ms", Row.BuildMs);
    T.set("full_copy_build_ms", Row.FullCopyBuildMs);
    Timing.set(std::to_string(Row.Ops), std::move(T));
  }
  for (const DetectorRow &Row : DetRows) {
    obs::Json T = obs::Json::object();
    T.set("adaptive_ms", Row.AdaptiveMs);
    T.set("forced_ms", Row.ForcedMs);
    Timing.set("detector_" + std::to_string(Row.Ops), std::move(T));
  }
  Doc.set("timing", std::move(Timing));

  if (ReportPath) {
    std::string Out;
    obs::JsonReporter(Out).emit(Doc);
    std::ofstream File(ReportPath, std::ios::binary | std::ios::trunc);
    File.write(Out.data(), static_cast<std::streamsize>(Out.size()));
    if (!File) {
      std::fprintf(stderr, "error: cannot write %s\n", ReportPath);
      return 1;
    }
    std::printf("report: %zu bytes -> %s\n", Out.size(), ReportPath);
  }

  if (Failures) {
    std::printf("\nFAIL: %d gate(s) broken\n", Failures);
    return 1;
  }
  std::printf("\nOK: >=60%% clock-memory reduction, no build or access "
              "path regression, O(1)-common-case read state, "
              "byte-identical races\n");
  return 0;
}

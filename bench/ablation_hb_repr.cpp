//===- bench/ablation_hb_repr.cpp - HB representation ablation ----------------===//
//
// The paper represents happens-before "rather directly as a graph
// structure" and blames repeated traversals for much of its overhead,
// naming vector clocks as future work (Sec. 5.2.1). This ablation
// measures CHC query throughput under both representations on
// web-execution-shaped DAGs (long parse/dispatch chains with cross
// edges), at several sizes.
//
//===----------------------------------------------------------------------===//

#include "hb/HbGraph.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace wr;

namespace {

/// Builds a web-like DAG: a main chain (parsing), periodic side chains
/// (dispatches, timers) that fork off and rejoin, and a fraction of
/// fully concurrent operations (user events).
void buildWebDag(HbGraph &G, size_t N, Rng &R) {
  Operation Meta;
  OpId ChainTail = G.addOperation(Meta);
  std::vector<OpId> All = {ChainTail};
  while (G.numOperations() < N) {
    double P = R.nextDouble();
    if (P < 0.6) {
      // Extend the main chain (parse ops).
      OpId Next = G.addOperation(Meta);
      G.addEdge(ChainTail, Next, HbRule::R1a_ParseOrder);
      ChainTail = Next;
      All.push_back(Next);
    } else if (P < 0.9) {
      // A dispatch: begin anchored to some creator, few handlers, end.
      OpId From = All[static_cast<size_t>(R.nextBelow(All.size()))];
      OpId Prev = G.addOperation(Meta);
      G.addEdge(From, Prev, HbRule::R8_TargetCreated);
      All.push_back(Prev);
      for (int H = 0; H < 3 && G.numOperations() < N; ++H) {
        OpId Handler = G.addOperation(Meta);
        G.addEdge(Prev, Handler, HbRule::RA_DispatchChain);
        Prev = Handler;
        All.push_back(Handler);
      }
    } else {
      // Fully concurrent op (user event).
      All.push_back(G.addOperation(Meta));
    }
  }
}

void BM_ChcQueries(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  bool UseVC = State.range(1) != 0;
  Rng R(99);
  HbGraph G;
  buildWebDag(G, N, R);
  G.setUseVectorClocks(UseVC);
  // Pre-generate query pairs like a detector would issue: mostly recent
  // op vs random older op.
  Rng QR(7);
  std::vector<std::pair<OpId, OpId>> Queries;
  for (int I = 0; I < 4096; ++I) {
    OpId B = static_cast<OpId>(QR.nextInRange(
        static_cast<int64_t>(N / 2), static_cast<int64_t>(N)));
    OpId A = static_cast<OpId>(QR.nextInRange(1, static_cast<int64_t>(B)));
    Queries.emplace_back(A, B);
  }
  // Pre-warm so lazy index construction is not billed to the queries
  // (BM_HbConstruction measures that separately).
  benchmark::DoNotOptimize(
      G.happensBefore(1, static_cast<OpId>(G.numOperations())));
  size_t Index = 0;
  size_t Positive = 0;
  for (auto _ : State) {
    const auto &[A, B] = Queries[Index++ & 4095];
    Positive += G.happensBefore(A, B);
    benchmark::DoNotOptimize(Positive);
  }
  State.SetLabel(UseVC ? "vector-clock" : "graph-dfs-memo");
  State.counters["chains"] =
      static_cast<double>(UseVC ? G.numChains() : 0);
}
BENCHMARK(BM_ChcQueries)
    ->ArgsProduct({{1000, 10000, 30000}, {0, 1}});

/// Construction cost: building the index as operations stream in.
void BM_HbConstruction(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  bool UseVC = State.range(1) != 0;
  for (auto _ : State) {
    Rng R(99);
    HbGraph G;
    buildWebDag(G, N, R);
    G.setUseVectorClocks(UseVC);
    // Touch one query so lazy structures materialize.
    benchmark::DoNotOptimize(
        G.happensBefore(1, static_cast<OpId>(N - 1)));
  }
  State.SetLabel(UseVC ? "vector-clock" : "graph-dfs-memo");
}
BENCHMARK(BM_HbConstruction)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

//===- bench/ablation_hb_repr.cpp - HB representation ablation ----------------===//
//
// The paper represents happens-before "rather directly as a graph
// structure" and blames repeated traversals for much of its overhead,
// naming vector clocks as future work (Sec. 5.2.1). This ablation
// measures CHC query throughput under both representations on
// web-execution-shaped DAGs (long parse/dispatch chains with cross
// edges) at several sizes, then cross-validates the strategies over the
// whole synthetic Fortune-100 corpus: for every site's final
// happens-before graph, DfsMemo and VectorClock must answer every
// ordered happensBefore(A, B) pair identically (any disagreement is a
// soundness bug and exits 1).
//
// Like table1/perf_overhead, results are emitted through the schema-1
// report builders: a text rendering to stdout and, with an argument, the
// byte-stable JSON document:
//
//   ablation_hb_repr [report.json]
//
//===----------------------------------------------------------------------===//

#include "hb/HbGraph.h"
#include "obs/Json.h"
#include "obs/Reporter.h"
#include "sites/Corpus.h"
#include "sites/CorpusRunner.h"
#include "support/Rng.h"
#include "webracer/Session.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace wr;

namespace {

/// Builds a web-like DAG: a main chain (parsing), periodic side chains
/// (dispatches, timers) that fork off and rejoin, and a fraction of
/// fully concurrent operations (user events).
void buildWebDag(HbGraph &G, size_t N, Rng &R) {
  Operation Meta;
  OpId ChainTail = G.addOperation(Meta);
  std::vector<OpId> All = {ChainTail};
  while (G.numOperations() < N) {
    double P = R.nextDouble();
    if (P < 0.6) {
      // Extend the main chain (parse ops).
      OpId Next = G.addOperation(Meta);
      G.addEdge(ChainTail, Next, HbRule::R1a_ParseOrder);
      ChainTail = Next;
      All.push_back(Next);
    } else if (P < 0.9) {
      // A dispatch: begin anchored to some creator, few handlers, end.
      OpId From = All[static_cast<size_t>(R.nextBelow(All.size()))];
      OpId Prev = G.addOperation(Meta);
      G.addEdge(From, Prev, HbRule::R8_TargetCreated);
      All.push_back(Prev);
      for (int H = 0; H < 3 && G.numOperations() < N; ++H) {
        OpId Handler = G.addOperation(Meta);
        G.addEdge(Prev, Handler, HbRule::RA_DispatchChain);
        Prev = Handler;
        All.push_back(Handler);
      }
    } else {
      // Fully concurrent op (user event).
      All.push_back(G.addOperation(Meta));
    }
  }
}

struct ThroughputRow {
  size_t Ops = 0;
  bool VectorClock = false;
  double QueriesPerSec = 0;
  uint64_t Positive = 0;
  size_t Chains = 0;
};

/// CHC query throughput for one (size, strategy) cell: a detector-shaped
/// workload (mostly recent op vs random older op) over a prebuilt DAG.
ThroughputRow measureThroughput(size_t N, bool UseVc) {
  ThroughputRow Row;
  Row.Ops = N;
  Row.VectorClock = UseVc;
  Rng R(99);
  HbGraph G;
  G.reserveOperations(N);
  buildWebDag(G, N, R);
  G.setUseVectorClocks(UseVc);
  Rng QR(7);
  std::vector<std::pair<OpId, OpId>> Queries;
  for (int I = 0; I < 4096; ++I) {
    OpId B = static_cast<OpId>(QR.nextInRange(
        static_cast<int64_t>(N / 2), static_cast<int64_t>(N)));
    OpId A = static_cast<OpId>(QR.nextInRange(1, static_cast<int64_t>(B)));
    Queries.emplace_back(A, B);
  }
  // Pre-warm so lazy index construction is not billed to the queries
  // (bench/hb_scaling measures construction separately).
  (void)G.happensBefore(1, static_cast<OpId>(G.numOperations()));
  const size_t Iterations = 400000;
  uint64_t Positive = 0;
  auto Start = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Iterations; ++I) {
    const auto &[A, B] = Queries[I & 4095];
    Positive += G.happensBefore(A, B);
  }
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  Row.QueriesPerSec = Secs > 0 ? static_cast<double>(Iterations) / Secs : 0;
  Row.Positive = Positive;
  Row.Chains = UseVc ? G.numChains() : 0;
  return Row;
}

struct ParityTotals {
  size_t Sites = 0;
  uint64_t Queries = 0;
  uint64_t Positive = 0;
  uint64_t Mismatches = 0;
};

/// Runs one site to completion and compares the two strategies on every
/// ordered pair of its final happens-before graph.
void checkSiteParity(const sites::GeneratedSite &Site, ParityTotals &T) {
  webracer::SessionOptions Opts;
  Opts.Browser.Seed = 42;
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  for (const sites::SiteResource &R : Site.Resources)
    S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
  (void)S.run(Site.IndexUrl);
  const HbGraph &G = S.browser().hb();
  size_t N = G.numOperations();
  ++T.Sites;
  for (OpId A = 1; A <= N; ++A)
    for (OpId B = A + 1; B <= N; ++B) {
      bool Dfs = G.reachesDfs(A, B);
      bool Vc = G.reachesVectorClock(A, B);
      ++T.Queries;
      T.Positive += Vc;
      if (Dfs != Vc) {
        if (++T.Mismatches <= 5)
          std::printf("MISMATCH: %s %u -> %u dfs=%d vc=%d\n",
                      Site.Name.c_str(), A, B, Dfs, Vc);
      }
    }
}

} // namespace

int main(int Argc, char **Argv) {
  std::printf("== HB representation ablation: graph DFS vs vector clock "
              "==\n\n");

  const size_t Sizes[] = {1000, 10000, 30000};
  std::vector<ThroughputRow> Rows;
  std::printf("%7s | %-14s | %12s | %8s | %7s\n", "ops", "strategy",
              "queries/sec", "positive", "chains");
  std::printf("--------+----------------+--------------+----------+-------"
              "-\n");
  for (size_t N : Sizes)
    for (bool UseVc : {false, true}) {
      ThroughputRow Row = measureThroughput(N, UseVc);
      std::printf("%7zu | %-14s | %12.0f | %8llu | %7zu\n", Row.Ops,
                  UseVc ? "vector-clock" : "graph-dfs-memo",
                  Row.QueriesPerSec,
                  static_cast<unsigned long long>(Row.Positive),
                  Row.Chains);
      Rows.push_back(Row);
    }

  // The throughput cells already share one query workload per size, so
  // the strategies' positive-answer counts must match cell for cell.
  int Failures = 0;
  for (size_t I = 0; I + 1 < Rows.size(); I += 2)
    if (Rows[I].Positive != Rows[I + 1].Positive) {
      std::printf("FAIL: positive-answer mismatch at %zu ops\n",
                  Rows[I].Ops);
      ++Failures;
    }

  std::printf("\ncorpus-wide parity: every happensBefore pair, both "
              "strategies...\n");
  ParityTotals Parity;
  for (const sites::GeneratedSite &Site : sites::buildFortune100Corpus(2012))
    checkSiteParity(Site, Parity);
  std::printf("%zu sites, %llu ordered pairs, %llu reachable, %llu "
              "mismatch(es)\n",
              Parity.Sites,
              static_cast<unsigned long long>(Parity.Queries),
              static_cast<unsigned long long>(Parity.Positive),
              static_cast<unsigned long long>(Parity.Mismatches));
  if (Parity.Mismatches)
    ++Failures;

  obs::Json Doc = obs::makeReportEnvelope("ablation", "hb_repr");
  obs::Json Cells = obs::Json::array();
  for (const ThroughputRow &Row : Rows) {
    obs::Json Cell = obs::Json::object();
    Cell.set("ops", static_cast<uint64_t>(Row.Ops));
    Cell.set("strategy", Row.VectorClock ? "vector-clock" : "graph-dfs-memo");
    Cell.set("positive", Row.Positive);
    Cell.set("chains", static_cast<uint64_t>(Row.Chains));
    Cells.push(std::move(Cell));
  }
  Doc.set("throughput_cells", std::move(Cells));
  obs::Json ParityJson = obs::Json::object();
  ParityJson.set("sites", static_cast<uint64_t>(Parity.Sites));
  ParityJson.set("queries", Parity.Queries);
  ParityJson.set("positive", Parity.Positive);
  ParityJson.set("mismatches", Parity.Mismatches);
  Doc.set("parity", std::move(ParityJson));
  // Throughput is wall-clock and machine-dependent, so it lives in the
  // "timing" section like every report's nondeterministic figures.
  obs::Json Timing = obs::Json::object();
  for (const ThroughputRow &Row : Rows)
    Timing.set((Row.VectorClock ? "vc_" : "dfs_") + std::to_string(Row.Ops),
               Row.QueriesPerSec);
  Doc.set("timing", std::move(Timing));

  std::string Text;
  obs::TextReporter(Text).emit(Doc);
  std::printf("\n%s", Text.c_str());

  if (Argc > 1) {
    std::string Out;
    obs::JsonReporter(Out).emit(Doc);
    std::ofstream File(Argv[1], std::ios::binary | std::ios::trunc);
    File.write(Out.data(), static_cast<std::streamsize>(Out.size()));
    if (!File) {
      std::fprintf(stderr, "error: cannot write %s\n", Argv[1]);
      return 1;
    }
    std::printf("report: %zu bytes -> %s\n", Out.size(), Argv[1]);
  }

  if (Failures) {
    std::printf("\nFAIL: strategies disagree\n");
    return 1;
  }
  std::printf("\nOK: DfsMemo and VectorClock agree on every query\n");
  return 0;
}

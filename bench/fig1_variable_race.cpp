//===- bench/fig1_variable_race.cpp - Reproduce Figure 1 ----------------------===//
//
// Paper Fig. 1: two iframes race on global x; the first write x=1 does
// NOT race. This harness sweeps the two iframes' latencies across a grid
// and checks that (a) the observed alert flips between 1 and 2 with the
// schedule and (b) the detector reports exactly one variable race on x in
// every schedule, never implicating the initial write.
//
//===----------------------------------------------------------------------===//

#include "detect/RaceDetector.h"
#include "detect/Report.h"
#include "runtime/Browser.h"

#include <cstdio>

using namespace wr;
using namespace wr::rt;
using namespace wr::detect;

namespace {

struct Outcome {
  std::string Alert;
  size_t VariableRacesOnX = 0;
  bool InitialWriteImplicated = false;
};

Outcome runSchedule(VirtualTime LatencyA, VirtualTime LatencyB) {
  Browser B{BrowserOptions()};
  RaceDetector D(B.hb(), B.interner());
  B.addSink(&D);
  B.network().addResource("index.html",
                          "<script>x = 1;</script>"
                          "<iframe src=\"a.html\"></iframe>"
                          "<iframe src=\"b.html\"></iframe>",
                          10);
  B.network().addResource("a.html", "<script>x = 2;</script>", LatencyA);
  B.network().addResource("b.html", "<script>alert(x);</script>",
                          LatencyB);
  B.loadPage("index.html");
  B.runToQuiescence();

  Outcome Result;
  Result.Alert = B.alerts().empty() ? "?" : B.alerts()[0];
  for (const Race &R : D.races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (R.Kind != RaceKind::Variable || !Loc || Loc->Name != "x")
      continue;
    ++Result.VariableRacesOnX;
    // The initial write runs in the first inline script operation; if it
    // showed up in a race pair the HB relation would be broken.
    const Operation &FirstOp = B.hb().operation(R.First.Op);
    if (FirstOp.Kind == OperationKind::ExecuteScript &&
        FirstOp.Doc == 1) // Main document's inline script.
      Result.InitialWriteImplicated = true;
  }
  return Result;
}

} // namespace

int main() {
  std::printf("== Fig. 1: variable race on x between two iframes ==\n\n");
  std::printf("%10s %10s | %6s | %s\n", "lat(a.html)", "lat(b.html)",
              "alert", "races-on-x (expect 1, initial write never races)");
  int Failures = 0;
  bool Saw1 = false, Saw2 = false;
  for (VirtualTime LatencyA : {500u, 1500u, 2500u, 6000u}) {
    for (VirtualTime LatencyB : {600u, 1600u, 2600u, 5000u}) {
      Outcome O = runSchedule(LatencyA, LatencyB);
      bool Ok = O.VariableRacesOnX == 1 && !O.InitialWriteImplicated;
      if (!Ok)
        ++Failures;
      Saw1 |= O.Alert == "1";
      Saw2 |= O.Alert == "2";
      std::printf("%10llu %10llu | %6s | %zu%s\n",
                  static_cast<unsigned long long>(LatencyA),
                  static_cast<unsigned long long>(LatencyB),
                  O.Alert.c_str(), O.VariableRacesOnX,
                  Ok ? "" : "  <-- UNEXPECTED");
    }
  }
  std::printf("\nboth outcomes observed across schedules: alert=1 %s, "
              "alert=2 %s\n",
              Saw1 ? "yes" : "NO", Saw2 ? "yes" : "NO");
  std::printf("schedules with unexpected detection: %d\n", Failures);
  return 0;
}

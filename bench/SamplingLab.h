//===- bench/SamplingLab.h - Shared sampling-frontier helpers ---*- C++ -*-===//
//
// Part of the WebRacer reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement core shared by bench/sampling_recall (the tier-1
/// gates) and bench/perf_overhead (the full recall-vs-rate frontier
/// table): run the synthetic corpus under one sampling configuration,
/// key every kept race by site + structural signature, and score recall
/// against the unsampled baseline. Races are identified by signature,
/// not by index - sampling can reorder which access becomes the recorded
/// witness, and the signature is the identity that survives that.
///
//===----------------------------------------------------------------------===//

#ifndef WEBRACER_BENCH_SAMPLINGLAB_H
#define WEBRACER_BENCH_SAMPLINGLAB_H

#include "sample/Sampling.h"
#include "sites/Corpus.h"
#include "sites/CorpusRunner.h"
#include "webracer/Session.h"

#include <set>
#include <string>
#include <vector>

namespace wr::bench {

/// Site-qualified signature keys of every filtered race in \p Stats.
/// The site name prefixes the key so the same structural pattern found
/// on two sites counts as two recall units, matching how the corpus
/// seeds expected races per site.
inline std::set<std::string> raceKeys(const sites::CorpusStats &Stats) {
  std::set<std::string> Keys;
  for (const sites::SiteRunStats &Site : Stats.Sites)
    for (const triage::RaceSignature &Sig : Site.Signatures)
      Keys.insert(Site.Name + "|" + Sig.text());
  return Keys;
}

/// One measured cell of the recall frontier.
struct RecallCell {
  sample::SamplingStrategy Strategy = sample::SamplingStrategy::Adaptive;
  double Rate = 1.0;
  size_t BaselineRaces = 0; ///< Distinct keys in the unsampled run.
  size_t FoundRaces = 0;    ///< Distinct keys in the sampled run.
  size_t MatchedRaces = 0;  ///< Intersection with the baseline.
  double Recall = 1.0;      ///< Matched / Baseline (1 when empty).
  uint64_t SeenAccesses = 0;
  uint64_t SampledAccesses = 0;
  uint64_t DroppedAccesses = 0;
  uint64_t DetectorAccesses = 0; ///< The run's aggregate AccessesSeen.
  bool ReconcileOk = false; ///< seen == sampled + dropped, exactly.
};

/// Runs \p Corpus under \p Sampling and scores the cell against
/// \p BaselineKeys (the unsampled run's keys, from raceKeys).
inline RecallCell runCell(const std::vector<sites::GeneratedSite> &Corpus,
                          const sample::SamplingOptions &Sampling,
                          uint64_t Seed, unsigned Jobs,
                          const std::set<std::string> &BaselineKeys) {
  webracer::SessionOptions Opts;
  Opts.Detector.Sampling = Sampling;
  Opts.Detector.Sampling.Seed = Seed;
  sites::CorpusStats Stats = sites::runCorpus(Corpus, Opts, Seed, Jobs);

  RecallCell Cell;
  Cell.Strategy = Sampling.Strategy;
  Cell.Rate = Sampling.Rate;
  Cell.BaselineRaces = BaselineKeys.size();
  std::set<std::string> Found = raceKeys(Stats);
  Cell.FoundRaces = Found.size();
  for (const std::string &Key : Found)
    Cell.MatchedRaces += BaselineKeys.count(Key);
  Cell.Recall = BaselineKeys.empty()
                    ? 1.0
                    : static_cast<double>(Cell.MatchedRaces) /
                          static_cast<double>(BaselineKeys.size());

  obs::RunStats Agg = Stats.aggregate();
  const obs::SamplingStats &S = Agg.Sampling;
  Cell.SeenAccesses = S.SeenReads + S.SeenWrites;
  Cell.SampledAccesses = S.SampledReads + S.SampledWrites;
  Cell.DroppedAccesses = S.DroppedReads + S.DroppedWrites;
  Cell.DetectorAccesses = Agg.AccessesSeen;
  // Rate 1.0 bypasses the sampler entirely (no wr_sampling record), so
  // reconciliation degenerates to all-zero on that row - still exact.
  Cell.ReconcileOk =
      Cell.SeenAccesses == Cell.SampledAccesses + Cell.DroppedAccesses;
  return Cell;
}

} // namespace wr::bench

#endif // WEBRACER_BENCH_SAMPLINGLAB_H

//===- bench/static_crosscheck.cpp - Static analyzer vs dynamic runs ----------===//
//
// Cross-validates the ahead-of-time static race analyzer (src/analysis)
// against the dynamic detector on the paper's Fig. 1-5 pages and on the
// synthetic corpus: for every page, the static analyzer predicts races
// from the HTML and scripts alone, a full dynamic session (with
// exploration) observes races, and the harness prints per-page precision
// and recall.
//
// On the figure pages the analyzer must predict every dynamically
// confirmed race (recall 1.0) - these are exactly the race shapes the
// must-HB approximation models. The deliberately imprecise
// false-positive page must stay unconfirmed (its only prediction is
// dynamically refuted), demonstrating the analyzer is not trivially
// precise. Corpus rows are informational: dynamically created scripts
// and richer DOM use are outside the static model, and the honest
// precision/recall numbers quantify that gap.
//
//===----------------------------------------------------------------------===//

#include "analysis/CrossCheck.h"
#include "sites/Corpus.h"

#include <cstdio>

using namespace wr;
using namespace wr::analysis;

namespace {

PageSpec toPageSpec(const sites::GeneratedSite &Site) {
  PageSpec Page;
  Page.Name = Site.Name;
  Page.EntryUrl = Site.IndexUrl;
  Page.Html = Site.Html;
  for (const sites::SiteResource &R : Site.Resources)
    Page.Resources.push_back(
        {R.Url, R.Body, (R.MinLatencyUs + R.MaxLatencyUs) / 2});
  return Page;
}

} // namespace

int main() {
  std::printf("== Static race prediction vs dynamic detection ==\n\n");

  int Failures = 0;
  std::vector<CrossCheckResult> FigResults;
  for (const PageSpec &Page : figurePages()) {
    CrossCheckResult R = crossCheck(Page);
    if (R.missedCount() != 0) {
      std::printf("FAIL: %s missed %zu dynamically confirmed race(s)\n",
                  R.Name.c_str(), R.missedCount());
      std::printf("%s\n", formatReport(R).c_str());
      ++Failures;
    }
    if (R.dynamicCount() == 0) {
      std::printf("FAIL: %s produced no dynamic races to validate "
                  "against\n",
                  R.Name.c_str());
      ++Failures;
    }
    FigResults.push_back(std::move(R));
  }

  // The flow-insensitivity false positive: predicted, never confirmed.
  CrossCheckResult Fp = crossCheck(falsePositivePage());
  if (Fp.predictedCount() == 0 || Fp.confirmedCount() != 0) {
    std::printf("FAIL: false-positive page expected >=1 refuted "
                "prediction, got %zu predicted / %zu confirmed\n",
                Fp.predictedCount(), Fp.confirmedCount());
    ++Failures;
  }
  FigResults.push_back(std::move(Fp));

  std::printf("-- figure pages --\n%s\n",
              formatTable(FigResults).c_str());

  const uint64_t Seed = 2012;
  std::vector<CrossCheckResult> SiteResults;
  for (const sites::GeneratedSite &Site :
       sites::buildFortune100Corpus(Seed)) {
    CrossCheckOptions Opts;
    Opts.Session.Browser.Seed = Seed;
    SiteResults.push_back(crossCheck(toPageSpec(Site), Opts));
  }
  std::printf("-- corpus (informational) --\n%s\n",
              formatTable(SiteResults).c_str());

  if (Failures) {
    std::printf("RESULT: %d FAILURE(S)\n", Failures);
    return 1;
  }
  std::printf("RESULT: OK (figure recall 1.0, false positive "
              "refuted)\n");
  return 0;
}

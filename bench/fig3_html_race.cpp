//===- bench/fig3_html_race.cpp - Reproduce Figure 3 ---------------------------===//
//
// Paper Fig. 3 (valero.com): clicking "Send Email" before the #dw div has
// parsed crashes the handler (hidden from the user). This harness sweeps
// the user's click time across the page-load window and reports, per
// schedule: whether the handler crashed, whether the form appeared, and
// whether the HTML race was detected (it must be, in every schedule).
//
//===----------------------------------------------------------------------===//

#include "detect/RaceDetector.h"
#include "runtime/Browser.h"

#include <cstdio>

using namespace wr;
using namespace wr::rt;
using namespace wr::detect;

namespace {

struct Outcome {
  bool Crashed = false;
  bool FormShown = false;
  bool RaceDetected = false;
  bool ClickHappened = false;
};

Outcome runSchedule(VirtualTime ClickAt) {
  Browser B{BrowserOptions()};
  RaceDetector D(B.hb(), B.interner());
  B.addSink(&D);
  B.network().addResource(
      "index.html",
      "<script>"
      "function show(emailTo) {"
      "  var v = document.getElementById('dw');"
      "  v.style.display = 'block';"
      "}"
      "</script>"
      "<a id=\"send\" href=\"javascript:show('x@x.com')\">Send Email</a>"
      "<script src=\"analytics.js\"></script>"
      "<div id=\"dw\" style=\"display:none\">email form</div>",
      10);
  // The slow synchronous script holds parsing open, widening the window
  // in which the user can click before #dw exists.
  B.network().addResource("analytics.js", "var q = 1;", 4000);
  B.loadPage("index.html");

  Outcome O;
  // Drive to the click time (without letting the virtual clock jump past
  // it), then click if the link exists.
  while (B.loop().pendingTasks() > 0 && B.loop().nextTaskTime() <= ClickAt)
    B.loop().runOne();
  Element *Link = B.mainWindow()
                      ? B.mainWindow()->document().getElementById("send")
                      : nullptr;
  if (Link) {
    B.userClick(Link);
    O.ClickHappened = true;
  }
  B.runToQuiescence();

  O.Crashed = !B.crashLog().empty();
  if (Element *Dw = B.mainWindow()->document().getElementById("dw"))
    O.FormShown = Dw->getAttribute("__style_display") == "block";
  for (const Race &R : D.races()) {
    const auto *Loc = std::get_if<HtmlElemLoc>(&R.Loc);
    if (R.Kind == RaceKind::Html && Loc && Loc->Key == "dw")
      O.RaceDetected = true;
  }
  return O;
}

} // namespace

int main() {
  std::printf("== Fig. 3: HTML race on #dw (click vs parse) ==\n\n");
  std::printf("%12s | %7s | %10s | %8s\n", "click at", "crashed",
              "form shown", "detected");
  int MissedDetections = 0;
  bool SawCrash = false, SawSuccess = false;
  for (VirtualTime ClickAt :
       {200u, 600u, 1200u, 2500u, 3500u, 4200u, 9000u}) {
    Outcome O = runSchedule(ClickAt);
    if (!O.ClickHappened)
      continue;
    if (!O.RaceDetected)
      ++MissedDetections;
    SawCrash |= O.Crashed;
    SawSuccess |= O.FormShown;
    std::printf("%10lluus | %7s | %10s | %8s\n",
                static_cast<unsigned long long>(ClickAt),
                O.Crashed ? "yes" : "no", O.FormShown ? "yes" : "no",
                O.RaceDetected ? "yes" : "MISSED");
  }
  std::printf("\nboth outcomes observed: crash %s, success %s; "
              "schedules where detection missed: %d\n",
              SawCrash ? "yes" : "NO", SawSuccess ? "yes" : "NO",
              MissedDetections);
  return 0;
}

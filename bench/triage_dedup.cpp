//===- bench/triage_dedup.cpp - Batch-ingest triage gates ---------------------===//
//
// The acceptance gates for the triage engine (signatures, suppressions,
// batch ingest):
//
//  1. Collapse: ingesting a directory where every recorded trace appears
//     DUP times collapses to exactly the signature set of the
//     un-duplicated traces, with every group's occurrence count scaled
//     by DUP and the group totals reconciling with the per-trace sums -
//     the "10^6 identical user traces become one report line" property.
//
//  2. Determinism: the merged batch report is byte-identical at --jobs
//     1, 2, 4, and 8.
//
//  3. Suppression: suppressing the top-ranked signature removes its
//     group from the report, every one of its occurrences lands in the
//     aggregate's filter attrition (zero silent attrition:
//     kept + suppressed == the unsuppressed kept total), and a stale
//     entry is reported as unmatched.
//
// Usage: triage_dedup [--quick]
//   full:    3 pattern sites x 9 seeds x 4 copies = 108 traces
//   --quick: 3 pattern sites x 4 seeds x 3 copies =  36 traces
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "sites/Corpus.h"
#include "triage/Batch.h"
#include "triage/Suppression.h"
#include "webracer/Session.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

using namespace wr;
namespace fs = std::filesystem;

namespace {

/// Records one session of \p Site at \p Seed and returns the WRT2 bytes.
std::string recordSite(const sites::GeneratedSite &Site, uint64_t Seed) {
  webracer::SessionOptions Opts;
  Opts.RecordTrace = true;
  Opts.Browser.Seed = Seed;
  webracer::Session S(Opts);
  S.network().addResource(Site.IndexUrl, Site.Html, 10);
  for (const sites::SiteResource &R : Site.Resources)
    S.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
  (void)S.run(Site.IndexUrl);
  return S.trace()->serialize();
}

bool writeFile(const fs::path &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.flush();
  return Out.good();
}

std::set<std::string> signatureSet(const triage::BatchResult &R) {
  std::set<std::string> Set;
  for (const triage::SignatureGroup &G : R.Groups)
    Set.insert(G.Sig.text());
  return Set;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
  const unsigned Seeds = Quick ? 4 : 9;
  const unsigned Dup = Quick ? 3 : 4;
  int Failures = 0;

  // The seeded pattern sites: one per race kind the filters keep.
  const std::vector<sites::SiteSpec> Specs = {
      {"dedup-form", {{sites::PatternKind::FormValueHarmful, 1}}},
      {"dedup-html", {{sites::PatternKind::HtmlLookupHarmful, 1}}},
      {"dedup-func", {{sites::PatternKind::FunctionCallHarmful, 1}}},
  };

  fs::path Base = fs::temp_directory_path() / "wr_triage_dedup_base";
  fs::path Full = fs::temp_directory_path() / "wr_triage_dedup_full";
  fs::remove_all(Base);
  fs::remove_all(Full);
  fs::create_directories(Base);
  fs::create_directories(Full);

  // Record Seeds traces per site; write each once into Base and Dup
  // times into Full (byte-identical copies under distinct names).
  size_t Recorded = 0;
  for (size_t SiteIdx = 0; SiteIdx < Specs.size(); ++SiteIdx) {
    sites::GeneratedSite Site = sites::buildSite(Specs[SiteIdx]);
    for (unsigned S = 0; S < Seeds; ++S) {
      std::string Bytes = recordSite(Site, 1000 + 17 * S);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "s%zu_seed%u.wrt", SiteIdx, S);
      if (!writeFile(Base / Name, Bytes)) {
        std::printf("FAIL: cannot write %s\n", (Base / Name).c_str());
        return 1;
      }
      for (unsigned D = 0; D < Dup; ++D) {
        std::snprintf(Name, sizeof(Name), "s%zu_seed%u_copy%u.wrt",
                      SiteIdx, S, D);
        if (!writeFile(Full / Name, Bytes)) {
          std::printf("FAIL: cannot write %s\n", (Full / Name).c_str());
          return 1;
        }
        ++Recorded;
      }
    }
  }
  std::printf("recorded %zu trace file(s) (%u per distinct execution)\n",
              Recorded, Dup);

  std::vector<std::string> BasePaths, FullPaths;
  std::string Error;
  if (!triage::listTraceFiles(Base.string(), BasePaths, Error) ||
      !triage::listTraceFiles(Full.string(), FullPaths, Error)) {
    std::printf("FAIL: %s\n", Error.c_str());
    return 1;
  }

  triage::BatchOptions Opts;
  Opts.Jobs = 4;
  triage::BatchResult BaseRun = triage::runBatch(BasePaths, Opts);
  triage::BatchResult FullRun = triage::runBatch(FullPaths, Opts);

  // Gate 1: duplicated ingest collapses to the seeded signature set.
  if (BaseRun.TotalKept == 0) {
    std::printf("FAIL: seeded patterns produced no kept races\n");
    ++Failures;
  }
  if (signatureSet(FullRun) != signatureSet(BaseRun)) {
    std::printf("FAIL: duplicated ingest changed the signature set "
                "(%zu vs %zu)\n",
                signatureSet(FullRun).size(),
                signatureSet(BaseRun).size());
    ++Failures;
  }
  if (FullRun.TotalKept != Dup * BaseRun.TotalKept) {
    std::printf("FAIL: occurrences did not scale with duplication "
                "(%llu vs %u x %llu)\n",
                static_cast<unsigned long long>(FullRun.TotalKept), Dup,
                static_cast<unsigned long long>(BaseRun.TotalKept));
    ++Failures;
  }
  uint64_t Grouped = 0, PerTrace = 0;
  for (const triage::SignatureGroup &G : FullRun.Groups)
    Grouped += G.Occurrences;
  for (const triage::TraceIngest &In : FullRun.Traces)
    PerTrace += In.Kept.size();
  if (Grouped != PerTrace || Grouped != FullRun.TotalKept) {
    std::printf("FAIL: group occurrences (%llu) != per-trace kept sum "
                "(%llu)\n",
                static_cast<unsigned long long>(Grouped),
                static_cast<unsigned long long>(PerTrace));
    ++Failures;
  }
  std::set<std::string> Kinds;
  for (const triage::SignatureGroup &G : FullRun.Groups)
    Kinds.insert(G.Sig.Kind);
  for (const char *Want : {"variable", "html", "function"})
    if (!Kinds.count(Want)) {
      std::printf("FAIL: seeded '%s' pattern signed no group\n", Want);
      ++Failures;
    }
  std::printf("gate 1: %zu distinct execution(s) x%u collapse to %zu "
              "signature(s), %llu occurrence(s)\n",
              BasePaths.size(), Dup, FullRun.Groups.size(),
              static_cast<unsigned long long>(FullRun.TotalKept));

  // Gate 2: byte-identical merged report at jobs 1/2/4/8.
  std::string Baseline;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    triage::BatchOptions J = Opts;
    J.Jobs = Jobs;
    std::string Doc = obs::writeJson(
        triage::buildBatchReport("dedup", triage::runBatch(FullPaths, J)));
    if (Baseline.empty()) {
      Baseline = Doc;
    } else if (Doc != Baseline) {
      std::printf("FAIL: batch report differs at jobs=%u\n", Jobs);
      ++Failures;
    }
  }
  std::printf("gate 2: %zu-byte report byte-identical at jobs 1/2/4/8\n",
              Baseline.size());

  // Gate 3: suppressing the top signature removes it everywhere and the
  // drops surface in the attrition (zero silent attrition).
  if (!FullRun.Groups.empty()) {
    const triage::SignatureGroup Victim = FullRun.Groups.front();
    triage::SuppressionFile File;
    File.add({"top signature", Victim.Sig.Kind, Victim.Sig.Location,
              Victim.Sig.Access, Victim.Sig.Context});
    File.add({"stale entry", "event-dispatch", "no-such-location", "*",
              "*"});
    triage::BatchOptions SupOpts = Opts;
    SupOpts.Suppressions = &File;
    triage::BatchResult Sup = triage::runBatch(FullPaths, SupOpts);
    for (const triage::SignatureGroup &G : Sup.Groups)
      if (G.Sig == Victim.Sig) {
        std::printf("FAIL: suppressed signature %s still reported\n",
                    Victim.Sig.id().c_str());
        ++Failures;
      }
    if (Sup.TotalSuppressed != Victim.Occurrences ||
        Sup.TotalKept + Sup.TotalSuppressed != FullRun.TotalKept) {
      std::printf("FAIL: suppression counts do not reconcile "
                  "(kept %llu + suppressed %llu != %llu)\n",
                  static_cast<unsigned long long>(Sup.TotalKept),
                  static_cast<unsigned long long>(Sup.TotalSuppressed),
                  static_cast<unsigned long long>(FullRun.TotalKept));
      ++Failures;
    }
    if (Sup.Aggregate.Attrition.Suppressed != Victim.Occurrences) {
      std::printf("FAIL: aggregate attrition lost %llu suppressed "
                  "drop(s)\n",
                  static_cast<unsigned long long>(Victim.Occurrences));
      ++Failures;
    }
    if (Sup.UnmatchedSuppressions !=
        std::vector<std::string>{"stale entry"}) {
      std::printf("FAIL: stale suppression not reported as unmatched\n");
      ++Failures;
    }
    std::printf("gate 3: suppressed %s (%llu occurrence(s)), attrition "
                "reconciles, stale entry flagged\n",
                Victim.Sig.id().c_str(),
                static_cast<unsigned long long>(Victim.Occurrences));
  }

  fs::remove_all(Base);
  fs::remove_all(Full);
  if (Failures) {
    std::printf("FAILED: %d gate violation(s)\n", Failures);
    return 1;
  }
  std::printf("OK: all triage gates hold%s\n", Quick ? " (quick)" : "");
  return 0;
}

//===- bench/table2_filtered_races.cpp - Reproduce Table 2 --------------------===//
//
// Paper Table 2: per-site races after the Sec. 5.3 filters, with harmful
// counts in parentheses. Totals row: HTML 219 (32), Function 37 (7),
// Variable 8 (5), Event Dispatch 91 (83).
//
// This harness runs WebRacer over the corpus with filters enabled and
// prints, for every site the paper lists, the paper's counts next to the
// measured ones. Harmful counts come from the corpus ground truth (the
// pattern manifests encode the paper's per-type harmfulness criteria of
// Sec. 6.1/6.3).
//
//===----------------------------------------------------------------------===//

#include "sites/CorpusRunner.h"
#include "webracer/Harm.h"

#include <cstdio>
#include <map>
#include <string>

using namespace wr;
using namespace wr::sites;

int main() {
  const uint64_t Seed = 2012;
  std::printf("== Table 2: filtered races per site (harmful in parens) "
              "==\n");
  std::vector<GeneratedSite> Corpus = buildFortune100Corpus(Seed);
  webracer::SessionOptions Opts;
  CorpusStats Stats = runCorpus(Corpus, Opts, Seed);

  std::map<std::string, const SiteRunStats *> ByName;
  for (const SiteRunStats &S : Stats.Sites)
    ByName[S.Name] = &S;

  std::printf("\n%-20s | %-26s | %-26s\n", "site",
              "paper html/fn/var/disp", "measured html/fn/var/disp");
  std::printf("---------------------+----------------------------+-------"
              "---------------------\n");
  int Mismatches = 0;
  for (const Table2Row &Row : table2Rows()) {
    const SiteRunStats *S = ByName[Row.Name];
    if (!S) {
      std::printf("%-20s | MISSING\n", Row.Name);
      ++Mismatches;
      continue;
    }
    bool Match =
        S->Filtered.Html == static_cast<size_t>(Row.Html) &&
        S->Filtered.Function == static_cast<size_t>(Row.Function) &&
        S->Filtered.Variable == static_cast<size_t>(Row.Variable) &&
        S->Filtered.EventDispatch == static_cast<size_t>(Row.Dispatch);
    if (!Match)
      ++Mismatches;
    char Paper[64], Measured[64];
    std::snprintf(Paper, sizeof(Paper), "%d(%d) %d(%d) %d(%d) %d(%d)",
                  Row.Html, Row.HtmlHarmful, Row.Function,
                  Row.FunctionHarmful, Row.Variable, Row.VariableHarmful,
                  Row.Dispatch, Row.DispatchHarmful);
    std::snprintf(Measured, sizeof(Measured),
                  "%zu(%d) %zu(%d) %zu(%d) %zu(%d)%s", S->Filtered.Html,
                  S->Expected.HtmlHarmful, S->Filtered.Function,
                  S->Expected.FunctionHarmful, S->Filtered.Variable,
                  S->Expected.VariableHarmful, S->Filtered.EventDispatch,
                  S->Expected.EventDispatchHarmful, Match ? "" : "  <-- ");
    std::printf("%-20s | %-26s | %-26s\n", Row.Name, Paper, Measured);
  }

  detect::RaceTally Totals = Stats.filteredTotals();
  std::printf("---------------------+----------------------------+-------"
              "---------------------\n");
  std::printf("%-20s | 219(32) 37(7) 8(5) 91(83)  | %zu %zu %zu %zu\n",
              "Total (paper)", Totals.Html, Totals.Function,
              Totals.Variable, Totals.EventDispatch);

  // Any filler site reporting filtered races would be a calibration bug.
  int FillerNoise = 0;
  for (const SiteRunStats &S : Stats.Sites) {
    bool Listed = false;
    for (const Table2Row &Row : table2Rows())
      if (S.Name == Row.Name)
        Listed = true;
    if (!Listed && S.Filtered.total() != 0) {
      ++FillerNoise;
      std::printf("unexpected filtered races on filler site %s: %s\n",
                  S.Name.c_str(),
                  detect::summaryLine(S.FilteredRaces).c_str());
    }
  }
  std::printf("\nper-site mismatches: %d, filler sites with filtered "
              "races: %d\n",
              Mismatches, FillerNoise);

  // Validation: replay-classify every filtered race (the mechanized
  // Sec. 6.1/6.3 criteria) and compare against the paper's judgments.
  std::printf("\n== replay-based harmfulness validation ==\n");
  std::map<std::string, const GeneratedSite *> SiteByName;
  for (const GeneratedSite &G : Corpus)
    SiteByName[G.Name] = &G;
  int Agree = 0, Disagree = 0, Inconclusive = 0;
  size_t Replays = 0;
  for (const SiteRunStats &S : Stats.Sites) {
    if (S.FilteredRaces.empty())
      continue;
    const GeneratedSite *Site = SiteByName[S.Name];
    // Re-run the site to get a live HB graph paired with its races.
    webracer::SessionOptions SOpts = Opts;
    webracer::Session Fresh(SOpts);
    Fresh.network().addResource(Site->IndexUrl, Site->Html, 10);
    for (const SiteResource &R : Site->Resources)
      Fresh.network().addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                            R.MaxLatencyUs);
    webracer::SessionResult FreshResult = Fresh.run(Site->IndexUrl);
    webracer::HarmAnalyzer Analyzer(
        [Site](rt::NetworkSimulator &Net) {
          Net.addResource(Site->IndexUrl, Site->Html, 10);
          for (const SiteResource &R : Site->Resources)
            Net.addResourceWithJitter(R.Url, R.Body, R.MinLatencyUs,
                                      R.MaxLatencyUs);
        },
        Site->IndexUrl);
    // Compare per kind: how many the replays call harmful vs how many
    // the paper called harmful on this site.
    std::map<detect::RaceKind, int> ClassifiedHarmful, Classified;
    for (const detect::Race &R : FreshResult.FilteredRaces) {
      webracer::HarmEvidence E =
          Analyzer.analyze(R, Fresh.browser().hb());
      if (E.Verdict == webracer::HarmVerdict::Inconclusive) {
        ++Inconclusive;
        continue;
      }
      ++Classified[R.Kind];
      if (E.Verdict == webracer::HarmVerdict::Harmful)
        ++ClassifiedHarmful[R.Kind];
    }
    std::map<detect::RaceKind, int> ExpectedHarmful = {
        {detect::RaceKind::Html, Site->Expected.HtmlHarmful},
        {detect::RaceKind::Function, Site->Expected.FunctionHarmful},
        {detect::RaceKind::Variable, Site->Expected.VariableHarmful},
        {detect::RaceKind::EventDispatch,
         Site->Expected.EventDispatchHarmful}};
    for (auto &[Kind, Total] : Classified) {
      int Delta = std::abs(ClassifiedHarmful[Kind] - ExpectedHarmful[Kind]);
      Disagree += Delta;
      Agree += Total - Delta;
    }
    Replays += Analyzer.replaysRun();
  }
  std::printf("verdicts agreeing with the paper's judgment: %d\n", Agree);
  std::printf("disagreeing: %d  (expected for 'deliberate delayed "
              "loading' races, which the paper judged benign by developer "
              "intent - a mechanical criterion cannot see intent)\n",
              Disagree);
  std::printf("inconclusive: %d, replays executed: %zu\n", Inconclusive,
              Replays);
  return 0;
}

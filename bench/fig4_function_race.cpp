//===- bench/fig4_function_race.cpp - Reproduce Figure 4 -----------------------===//
//
// Paper Fig. 4 (Mozilla unit test): an iframe's onload does
// setTimeout(doNextStep, 20) while doNextStep is declared by a later
// script. If the iframe loads too fast, the callback fires before the
// declaration parses. This harness sweeps the iframe latency around the
// 20ms timer and shows the crash appearing/disappearing while the
// function race is detected in every schedule; it also verifies the
// paper's fix (moving the script above the iframe) removes the race.
//
//===----------------------------------------------------------------------===//

#include "detect/RaceDetector.h"
#include "runtime/Browser.h"

#include <cstdio>

using namespace wr;
using namespace wr::rt;
using namespace wr::detect;

namespace {

struct Outcome {
  bool Crashed = false;
  bool StepDone = false;
  bool RaceDetected = false;
};

Outcome runSchedule(VirtualTime FrameLatency, VirtualTime MainLatency,
                    bool Fixed) {
  Browser B{BrowserOptions()};
  RaceDetector D(B.hb(), B.interner());
  B.addSink(&D);
  std::string FramePart =
      "<iframe id=\"i\" src=\"sub.html\""
      " onload=\"setTimeout(doNextStep, 20)\"></iframe>";
  std::string ScriptPart =
      "<script>function doNextStep() { window.stepDone = true; }</script>";
  // A slow sync script between iframe and declaration widens the window.
  std::string Middle = "<script src=\"mid.js\"></script>";
  std::string Html = Fixed ? ScriptPart + FramePart
                           : FramePart + Middle + ScriptPart;
  B.network().addResource("index.html", Html, 10);
  B.network().addResource("sub.html", "<p>sub</p>", FrameLatency);
  B.network().addResource("mid.js", "var mid = 1;", MainLatency);
  B.loadPage("index.html");
  B.runToQuiescence();

  Outcome O;
  O.Crashed = !B.crashLog().empty();
  js::Value *V =
      B.mainWindow()->windowObject()->findOwnProperty("stepDone");
  O.StepDone = V && V->isBool() && V->asBool();
  for (const Race &R : D.races()) {
    const auto *Loc = std::get_if<JSVarLoc>(&R.Loc);
    if (R.Kind == RaceKind::Function && Loc && Loc->Name == "doNextStep")
      O.RaceDetected = true;
  }
  return O;
}

} // namespace

int main() {
  std::printf("== Fig. 4: function race on doNextStep ==\n\n");
  std::printf("%12s %12s | %7s | %9s | %8s\n", "frame lat", "script lat",
              "crashed", "step done", "detected");
  bool SawCrash = false, SawSuccess = false;
  int Missed = 0;
  for (VirtualTime FrameLatency : {100u, 1000u, 5000u}) {
    for (VirtualTime ScriptLatency : {500u, 30000u, 60000u}) {
      Outcome O = runSchedule(FrameLatency, ScriptLatency, false);
      SawCrash |= O.Crashed;
      SawSuccess |= O.StepDone;
      if (!O.RaceDetected)
        ++Missed;
      std::printf("%10lluus %10lluus | %7s | %9s | %8s\n",
                  static_cast<unsigned long long>(FrameLatency),
                  static_cast<unsigned long long>(ScriptLatency),
                  O.Crashed ? "yes" : "no", O.StepDone ? "yes" : "no",
                  O.RaceDetected ? "yes" : "MISSED");
    }
  }
  std::printf("\nboth outcomes observed: crash %s, success %s; missed "
              "detections: %d\n",
              SawCrash ? "yes" : "NO", SawSuccess ? "yes" : "NO", Missed);

  // The paper's fix: move the declaration above the iframe.
  Outcome Fixed = runSchedule(100, 500, /*Fixed=*/true);
  std::printf("\nwith the fix (script above iframe): crashed=%s "
              "stepDone=%s race=%s (expect no/yes/no)\n",
              Fixed.Crashed ? "yes" : "no", Fixed.StepDone ? "yes" : "no",
              Fixed.RaceDetected ? "STILL DETECTED" : "no");
  return 0;
}

//===- examples/southwest_form_race.cpp - The Fig. 2 bug, end to end ----------===//
//
// Reproduces the southwest.com bug from the paper's Fig. 2: a hint script
// races with the user typing a departure city. The example runs the page
// twice - once with the user typing after the script (what the developer
// tested) and once typing into the partially loaded page (what a user on
// a slow connection does) - and shows the typed city being destroyed,
// plus the race report that catches the bug in *both* schedules.
//
//===----------------------------------------------------------------------===//

#include "webracer/WebRacer.h"

#include <cstdio>

using namespace wr;
using namespace wr::rt;

namespace {

const char *PageHtml =
    "<h1>Book a flight</h1>"
    "<input type=\"text\" id=\"depart\" />"
    "<script src=\"hints.js\"></script>";

const char *HintScript =
    "document.getElementById('depart').value = 'City of Departure';";

void runOnce(bool UserIsFast) {
  Browser B{BrowserOptions()};
  detect::RaceDetector D(B.hb(), B.interner());
  B.addSink(&D);
  B.network().addResource("southwest.html", PageHtml, 10);
  B.network().addResource("hints.js", HintScript, 5000);
  B.loadPage("southwest.html");

  if (UserIsFast) {
    // The user sees the box as soon as it renders and types immediately,
    // while hints.js is still in flight.
    while (B.loop().pendingTasks() > 0) {
      Element *Box = B.mainWindow()->document().getElementById("depart");
      if (Box) {
        B.userType(Box, "Boston");
        break;
      }
      B.loop().runOne();
    }
    B.runToQuiescence();
  } else {
    B.runToQuiescence();
    B.userType(B.mainWindow()->document().getElementById("depart"),
               "Boston");
    B.runToQuiescence();
  }

  Element *Box = B.mainWindow()->document().getElementById("depart");
  std::printf("  user typed \"Boston\"; the box now contains: \"%s\"%s\n",
              Box->formValue().c_str(),
              Box->formValue() == "Boston" ? "" : "   <-- INPUT LOST");
  std::vector<detect::Race> Filtered = detect::filterFormRaces(D.races());
  std::printf("  races surviving the form filter: %zu\n", Filtered.size());
  for (const detect::Race &R : Filtered)
    std::printf("%s", detect::describeRace(R, B.hb()).c_str());
}

} // namespace

int main() {
  std::printf("schedule 1: user types after the page finishes loading\n");
  runOnce(/*UserIsFast=*/false);
  std::printf("\nschedule 2: user types into the partially loaded page\n");
  runOnce(/*UserIsFast=*/true);
  std::printf("\nThe detector reports the race in both schedules - "
              "including the one where nothing visibly went wrong.\n");
  return 0;
}

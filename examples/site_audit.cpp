//===- examples/site_audit.cpp - Audit a site the way the paper did -----------===//
//
// The paper's evaluation workflow as a program: load a full-featured page
// (several scripts, frames, images, XHR, delayed loading), let automatic
// exploration interact with it, and print a triaged report - raw counts,
// filtered counts, and per-race details with the responsible operations.
//
//===----------------------------------------------------------------------===//

#include "webracer/WebRacer.h"

#include <cstdio>

using namespace wr;

int main() {
  webracer::SessionOptions Opts;
  Opts.RecordTrace = false;
  webracer::Session S(Opts);
  auto &Net = S.network();

  // A "company home page" exercising most platform features.
  Net.addResource(
      "acme.com/index.html",
      "<head><title>ACME</title></head>"
      "<body>"
      // Search box that a hint script will clobber (Fig. 2 pattern).
      "<input type=\"text\" id=\"search\" />"
      // Navigation with a javascript: link depending on a late div.
      "<script>"
      "function openPanel() {"
      "  document.getElementById('panel').style.display = 'block';"
      "}"
      "</script>"
      "<a id=\"nav\" href=\"javascript:openPanel()\">Products</a>"
      // Hero image monitored Gomez-style below.
      "<img id=\"hero\" src=\"acme.com/hero.png\" />"
      // Third-party-style widget in a frame.
      "<iframe id=\"widget\" src=\"acme.com/widget.html\"></iframe>"
      // Delayed functionality: menu + analytics arrive async.
      "<script src=\"acme.com/menu.js\" async=\"true\"></script>"
      "<script src=\"acme.com/hints.js\" async=\"true\"></script>"
      // Gomez-style monitor.
      "<script>"
      "var seen = {};"
      "var polls = 0;"
      "var iv = setInterval(function() {"
      "  polls++;"
      "  var imgs = document.images;"
      "  for (var i = 0; i < imgs.length; i++) {"
      "    if (!seen[imgs[i].id]) {"
      "      seen[imgs[i].id] = true;"
      "      imgs[i].onload = function() {};"
      "    }"
      "  }"
      "  if (polls > 8) clearInterval(iv);"
      "}, 10);"
      "</script>"
      // XHR for personalization.
      "<script>"
      "var user = 'anonymous';"
      "var xhr = new XMLHttpRequest();"
      "xhr.open('GET', 'acme.com/user.json');"
      "xhr.onreadystatechange = function() {"
      "  if (xhr.readyState == 4) user = xhr.responseText;"
      "};"
      "xhr.send();"
      "</script>"
      // The late panel the nav link needs.
      "<div id=\"panel\" style=\"display:none\">catalog</div>"
      "</body>",
      10);
  Net.addResourceWithJitter("acme.com/hero.png", "PNG", 500, 4000);
  Net.addResourceWithJitter("acme.com/widget.html",
                  "<p>partner widget</p><script>widgetReady = 1;</script>",
                  1000, 6000);
  Net.addResourceWithJitter("acme.com/menu.js",
                  "document.getElementById('nav').onmouseover ="
                  "  function() { window.menuShown = true; };",
                  500, 5000);
  Net.addResourceWithJitter("acme.com/hints.js",
                  "document.getElementById('search').value ="
                  "  'What are you looking for?';",
                  500, 5000);
  Net.addResource("acme.com/user.json", "\"jdoe\"", 2000);

  webracer::SessionResult R = S.run("acme.com/index.html");

  std::printf("== audit of acme.com ==\n");
  std::printf("operations: %llu, hb edges: %llu, explored events: %zu, "
              "crashes: %zu\n\n",
              static_cast<unsigned long long>(R.Stats.Operations),
              static_cast<unsigned long long>(R.Stats.HbEdges),
              R.Explore.EventsDispatched, R.Crashes.size());
  std::printf("raw:      %s\n", detect::summaryLine(R.RawRaces).c_str());
  std::printf("filtered: %s\n\n",
              detect::summaryLine(R.FilteredRaces).c_str());
  std::printf("-- filtered reports (what a developer triages) --\n");
  std::printf("%s",
              detect::describeRaces(R.FilteredRaces,
                                    S.browser().hb()).c_str());
  return 0;
}

//===- examples/quickstart.cpp - Five-minute WebRacer tour --------------------===//
//
// Loads a small page with a deliberate race (the paper's Fig. 1 shape),
// runs the detector, and prints what it found - the minimal end-to-end
// use of the library.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "webracer/WebRacer.h"

#include <cstdio>

using namespace wr;

int main() {
  webracer::SessionOptions Opts;
  webracer::Session S(Opts);

  // Register the page and its subresources on the simulated network.
  // The two iframes' scripts race on the global variable x.
  S.network().addResource("index.html",
                          "<script>x = 1;</script>"
                          "<iframe src=\"a.html\"></iframe>"
                          "<iframe src=\"b.html\"></iframe>",
                          /*Latency=*/10);
  S.network().addResource("a.html", "<script>x = 2;</script>", 1000);
  S.network().addResource("b.html", "<script>alert(x);</script>", 2000);

  // Load the page, run it to quiescence, explore, detect.
  webracer::SessionResult R = S.run("index.html");

  std::printf("page executed %llu operations, %llu happens-before edges\n",
              static_cast<unsigned long long>(R.Stats.Operations),
              static_cast<unsigned long long>(R.Stats.HbEdges));
  std::printf("alert() showed: %s\n",
              R.Alerts.empty() ? "(nothing)" : R.Alerts[0].c_str());
  std::printf("\n%zu race(s) found:\n", R.RawRaces.size());
  std::printf("%s", detect::describeRaces(R.RawRaces,
                                          S.browser().hb()).c_str());

  // Explain why the *first* write does not race: the happens-before path
  // from the initial script to the iframes' scripts.
  std::printf("summary: %s\n", detect::summaryLine(R.RawRaces).c_str());
  return 0;
}

//===- examples/gomez_monitor.cpp - The Gomez monitor bug in isolation --------===//
//
// The paper's only source of harmful event-dispatch races (Sec. 6.3): the
// Gomez performance monitor polls document.images every 10ms and attaches
// an onload handler to each new image - but a fast image's load event may
// fire before its handler is attached, so its load time is never
// measured. This example sweeps image latency and shows exactly when the
// measurement silently disappears, plus the race report that would have
// warned the developer.
//
//===----------------------------------------------------------------------===//

#include "webracer/WebRacer.h"

#include <cstdio>

using namespace wr;
using namespace wr::rt;

namespace {

struct Outcome {
  bool Measured = false;
  size_t DispatchRaces = 0;
};

Outcome runWithImageLatency(VirtualTime Latency) {
  Browser B{BrowserOptions()};
  detect::RaceDetector D(B.hb(), B.interner());
  B.addSink(&D);
  B.network().addResource(
      "page.html",
      "<img id=\"product\" src=\"product.png\" />"
      "<script>"
      "window.measured = false;"
      "var seen = {};"
      "var polls = 0;"
      "var iv = setInterval(function() {"
      "  polls++;"
      "  var imgs = document.images;"
      "  for (var i = 0; i < imgs.length; i++) {"
      "    if (!seen[imgs[i].id]) {"
      "      seen[imgs[i].id] = true;"
      "      imgs[i].onload = function() { window.measured = true; };"
      "    }"
      "  }"
      "  if (polls > 12) clearInterval(iv);"
      "}, 10);"
      "</script>",
      10);
  B.network().addResource("product.png", "PNG", Latency);
  B.loadPage("page.html");
  B.runToQuiescence();

  Outcome O;
  js::Value *V =
      B.mainWindow()->windowObject()->findOwnProperty("measured");
  O.Measured = V && V->isBool() && V->asBool();
  for (const detect::Race &R : D.races())
    if (R.Kind == detect::RaceKind::EventDispatch)
      ++O.DispatchRaces;
  return O;
}

} // namespace

int main() {
  std::printf("== the Gomez image-load monitor race ==\n\n");
  std::printf("the monitor polls every 10ms; images faster than the first "
              "poll escape measurement.\n\n");
  std::printf("%14s | %18s | %s\n", "image latency",
              "load time measured", "dispatch races detected");
  for (VirtualTime Latency :
       {100u, 2000u, 8000u, 11000u, 25000u, 60000u}) {
    Outcome O = runWithImageLatency(Latency);
    std::printf("%12lluus | %18s | %zu\n",
                static_cast<unsigned long long>(Latency),
                O.Measured ? "yes" : "NO (silently lost)",
                O.DispatchRaces);
  }
  std::printf("\nthe race is reported in every schedule, including the "
              "ones where the measurement happened to work.\n");
  return 0;
}

//===- tools/webracer_cli.cpp - WebRacer command-line front end ----------------===//
//
// Subcommand interface:
//
//   webracer-cli page <index.html> [options]
//       run race detection over a page stored on disk. Every file under
//       the page's directory (or --root DIR) is registered on the
//       simulated network under its path relative to that directory, so
//       <script src="js/app.js"> resolves to <root>/js/app.js.
//   webracer-cli replay <trace.wrt> [options]
//       skip the browser: deserialize a recorded trace and run detection
//       + filters offline over it
//   webracer-cli corpus [options]
//       run the synthetic Fortune-100 corpus (optionally in parallel)
//   webracer-cli cross-check <index.html> [options]
//       run the static analyzer AND a dynamic session, then print the
//       precision/recall comparison (--static-only skips the dynamic
//       run; --precision adds the per-guard-class accounting)
//   webracer-cli batch --traces DIR [options]
//       ingest every .wrt trace in DIR, deduplicate races by structural
//       signature, and emit one ranked report (byte-identical at any
//       --jobs count)
//
// Options (per subcommand; unknown options exit 2):
//   --root DIR          page, cross-check: resource root (default: the
//                       page's directory)
//   --seed N            page, corpus, cross-check: determinism seed
//                       (default 1)
//   --latency N         page, cross-check: fixed resource latency in
//                       microseconds (default: jitter 500..3000)
//   --raw               page, replay: print unfiltered races
//   --no-explore        page, cross-check: skip automatic exploration
//   --engine NAME       partial-order engine: hb (default), hb-dfs, shb,
//                       or wcp. The observed race output is always
//                       computed under happens-before; shb/wcp add a
//                       predictive pass (implies --predict)
//   --predict           page, replay, batch: run the SHB and WCP
//                       predictive passes after the observed run
//   --suppressions FILE page, replay, corpus, batch: drop races matching
//                       the suppression file; drops are counted in the
//                       filter attrition and unmatched entries warn
//   --sample-rate X     page, replay, corpus, batch: fraction of the
//                       access stream the detector sees, in [0, 1]
//                       (default 1 = full instrumentation; below 1 the
//                       report grows a wr_sampling attrition group)
//   --sample-strategy NAME
//                       page, replay, corpus, batch: per-location,
//                       per-pair, or adaptive (the default; cold-region
//                       biasing with inflation/race heat)
//   --trace             page: dump the full instrumentation trace;
//                       cross-check --static-only: dump the must-HB graph
//   --record FILE       page: write the execution trace to FILE (WRT2)
//   --sites N           corpus: only the first N sites (default 100)
//   --jobs N            corpus, batch: thread-pool size (default 1; must
//                       be at least 1)
//   --traces DIR        batch: the directory of .wrt traces to ingest
//   --precision         cross-check: per-guard-class precision accounting
//   --static-only       cross-check: static analysis alone, no dynamic run
//   --json FILE         write the schema-1 JSON report to FILE
//   --metrics           dump run statistics as a name-sorted listing
//
// The pre-subcommand flag spellings (`webracer-cli index.html --raw`,
// `--corpus`, `--replay FILE`, `--cross-check`, `--static-analyze`,
// `--static-precision`) keep working through an alias shim that prints a
// one-line deprecation note to stderr. The `--dfs` / `--vector-clocks`
// flags are gone: use `--engine hb-dfs` / `--engine hb`.
//
// Count-valued options take strict unsigned decimal integers; anything
// else (including a bare "-" or trailing junk) is a usage error.
//
//===----------------------------------------------------------------------===//

#include "sample/Sampling.h"
#include "support/StringUtils.h"
#include "webracer/WebRacer.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace wr;
namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <subcommand> [options]\n"
      "\n"
      "subcommands:\n"
      "  page <index.html>     detect races on a page stored on disk\n"
      "  replay <trace.wrt>    offline detection over a recorded trace\n"
      "  corpus                run the synthetic Fortune-100 corpus\n"
      "  cross-check <index.html>\n"
      "                        static-vs-dynamic race comparison\n"
      "  batch --traces DIR    deduplicating ingest of a trace directory\n"
      "\n"
      "common options: --engine hb|hb-dfs|shb|wcp, --json FILE,\n"
      "  --metrics, --suppressions FILE, --sample-rate X,\n"
      "  --sample-strategy per-location|per-pair|adaptive; see the\n"
      "  header of this tool or README.md for the per-subcommand "
      "tables.\n",
      Argv0);
  return 2;
}

/// Strict unsigned parse for a count-valued flag; on failure prints a
/// usage error naming the flag and the offending value.
bool parseCountArg(const char *Flag, const char *Value, uint64_t &Out) {
  if (parseUint64(Value, Out))
    return true;
  std::fprintf(stderr, "error: %s expects an unsigned integer, got '%s'\n",
               Flag, Value);
  return false;
}

/// Strict parse for --sample-rate: a decimal number within [0, 1];
/// anything else (trailing junk, NaN, out of range) is a usage error.
bool parseRateArg(const char *Flag, const char *Value, double &Out) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Value, &End);
  if (End == Value || *End != '\0' || errno != 0 || !(V >= 0.0 && V <= 1.0)) {
    std::fprintf(stderr,
                 "error: %s expects a number within [0, 1], got '%s'\n",
                 Flag, Value);
    return false;
  }
  Out = V;
  return true;
}

/// Serializes \p Doc with the stable JSON backend and writes it to
/// \p Path; false (with a message) when the file cannot be written.
bool writeReportFile(const std::string &Path, const obs::Json &Doc) {
  std::string Bytes;
  obs::JsonReporter Reporter(Bytes);
  Reporter.emit(Doc);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.flush();
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  std::printf("report: %zu bytes -> %s\n", Bytes.size(), Path.c_str());
  return true;
}

/// Renders \p Doc with the text backend onto stdout.
void printReportText(const obs::Json &Doc) {
  std::string Out;
  obs::TextReporter Reporter(Out);
  Reporter.emit(Doc);
  std::printf("%s", Out.c_str());
}

/// \p Doc minus the member named \p Key (races render separately via
/// describeRaces; per-site rows are too bulky for a terminal).
obs::Json withoutMember(const obs::Json &Doc, const std::string &Key) {
  obs::Json Out = obs::Json::object();
  for (const auto &[Name, Value] : Doc.members())
    if (Name != Key)
      Out.set(Name, Value);
  return Out;
}

/// Snapshots \p Stats into a registry and dumps it name-sorted.
void printMetrics(const obs::RunStats &Stats) {
  obs::MetricsRegistry Registry;
  Stats.exportTo(Registry, "webracer");
  std::printf("\n-- metrics --\n%s", Registry.toText().c_str());
}

/// The schema-1 report for an offline replay: stats plus both race sets.
obs::Json buildReplayReport(const std::string &Name,
                            const detect::ReplayResult &R) {
  obs::Json Doc = obs::makeReportEnvelope("replay", Name);
  Doc.set("stats", R.Stats.toJson());
  obs::Json RawArr = obs::Json::array();
  for (const detect::Race &Race : R.RawRaces)
    RawArr.push(webracer::raceToJson(Race, R.Hb));
  obs::Json FilteredArr = obs::Json::array();
  for (const detect::Race &Race : R.FilteredRaces)
    FilteredArr.push(webracer::raceToJson(Race, R.Hb));
  obs::Json Races = obs::Json::object();
  Races.set("raw", std::move(RawArr));
  Races.set("filtered", std::move(FilteredArr));
  if (!R.Predictions.empty())
    Races.set("predicted",
              webracer::predictionsToJson(R.Predictions, R.Hb));
  Doc.set("races", std::move(Races));
  return Doc;
}

/// One summary line per predictive pass (page and replay modes).
void printPredictionSummary(
    const std::vector<detect::PredictionResult> &Predictions) {
  for (const detect::PredictionResult &P : Predictions)
    std::printf("%s prediction: %zu candidate(s), %zu observed, "
                "%zu predicted, %llu dropped edge(s)\n",
                toString(P.Engine), P.Races.size(), P.observedMatched(),
                P.predictedCount(),
                static_cast<unsigned long long>(P.DroppedEdges));
}

/// Builds a PageSpec from the files on disk under \p Root, mirroring the
/// dynamic mode's resource registration.
analysis::PageSpec pageSpecFromDisk(const fs::path &Index,
                                    const fs::path &Root,
                                    uint64_t FixedLatency) {
  analysis::PageSpec Page;
  std::error_code Ec;
  Page.Name = Index.filename().string();
  Page.EntryUrl = fs::relative(Index, Root, Ec).generic_string();
  Page.Html = readFile(Index);
  uint64_t Latency = FixedLatency ? FixedLatency : 1500;
  if (fs::is_directory(Root, Ec)) {
    for (const auto &Entry : fs::recursive_directory_iterator(Root, Ec)) {
      if (!Entry.is_regular_file())
        continue;
      std::string Url =
          fs::relative(Entry.path(), Root, Ec).generic_string();
      if (Url == Page.EntryUrl)
        continue;
      Page.Resources.push_back({Url, readFile(Entry.path()), Latency});
    }
  }
  return Page;
}

/// The subcommands of the redesigned interface.
enum class Mode { Page, Replay, Corpus, CrossCheck, Batch };

const char *modeName(Mode M) {
  switch (M) {
  case Mode::Page:
    return "page";
  case Mode::Replay:
    return "replay";
  case Mode::Corpus:
    return "corpus";
  case Mode::CrossCheck:
    return "cross-check";
  case Mode::Batch:
    return "batch";
  }
  return "?";
}

/// Every option of every subcommand (one shared table; the parser
/// rejects options a subcommand does not accept).
struct CliOptions {
  Mode M = Mode::Page;
  fs::path Index;        ///< page / cross-check positional.
  std::string TraceFile; ///< replay positional.
  fs::path Root;
  uint64_t Seed = 1;
  uint64_t FixedLatency = 0;
  bool Raw = false;
  bool Explore = true;
  bool Trace = false;
  bool Predict = false;
  bool Metrics = false;
  bool Precision = false;
  bool StaticOnly = false;
  EngineKind Engine = EngineKind::Hb;
  double SampleRate = 1.0;
  sample::SamplingStrategy SampleStrategy =
      sample::SamplingStrategy::Adaptive;
  std::string RecordFile, JsonFile, SuppressionsFile, TracesDir;
  uint64_t Sites = 0;
  uint64_t Jobs = 1;

  /// The sampling configuration the parsed flags describe; \p Seed keys
  /// the sampler's private stream (the run's --seed where the
  /// subcommand has one).
  sample::SamplingOptions samplingOptions(uint64_t Seed) const {
    sample::SamplingOptions S;
    S.Strategy = SampleStrategy;
    S.Rate = SampleRate;
    S.Seed = Seed;
    return S;
  }
};

/// True when subcommand \p M accepts \p Flag (the shared option table).
bool modeAccepts(Mode M, const std::string &Flag) {
  auto In = [&](std::initializer_list<Mode> Modes) {
    for (Mode Candidate : Modes)
      if (Candidate == M)
        return true;
    return false;
  };
  if (Flag == "--root" || Flag == "--latency" || Flag == "--no-explore")
    return In({Mode::Page, Mode::CrossCheck});
  if (Flag == "--seed")
    return In({Mode::Page, Mode::Corpus, Mode::CrossCheck});
  if (Flag == "--raw")
    return In({Mode::Page, Mode::Replay});
  if (Flag == "--engine")
    return true;
  if (Flag == "--predict")
    return In({Mode::Page, Mode::Replay, Mode::Batch});
  if (Flag == "--suppressions")
    return In({Mode::Page, Mode::Replay, Mode::Corpus, Mode::Batch});
  if (Flag == "--sample-rate" || Flag == "--sample-strategy")
    return In({Mode::Page, Mode::Replay, Mode::Corpus, Mode::Batch});
  if (Flag == "--trace")
    return In({Mode::Page, Mode::CrossCheck});
  if (Flag == "--record")
    return In({Mode::Page});
  if (Flag == "--sites")
    return In({Mode::Corpus});
  if (Flag == "--jobs")
    return In({Mode::Corpus, Mode::Batch});
  if (Flag == "--traces")
    return In({Mode::Batch});
  if (Flag == "--precision" || Flag == "--static-only")
    return In({Mode::CrossCheck});
  if (Flag == "--json" || Flag == "--metrics")
    return true;
  return false;
}

/// Parses the arguments after the subcommand. Returns 0 on success, else
/// the exit code (2 for usage errors).
int parseModeArgs(CliOptions &O, const std::vector<std::string> &Args,
                  const char *Argv0) {
  auto NeedsPositional = [&] {
    return O.M == Mode::Page || O.M == Mode::CrossCheck;
  };
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 < Args.size())
        return Args[++I].c_str();
      std::fprintf(stderr, "error: %s expects a value\n", Flag);
      return nullptr;
    };
    if (!Arg.empty() && Arg[0] != '-') {
      if (NeedsPositional() && O.Index.empty()) {
        O.Index = Arg;
        if (O.Root.empty())
          O.Root = O.Index.parent_path();
        // A bare filename has no parent component; serve its directory.
        if (O.Root.empty())
          O.Root = ".";
        continue;
      }
      if (O.M == Mode::Replay && O.TraceFile.empty()) {
        O.TraceFile = Arg;
        continue;
      }
      std::fprintf(stderr, "error: unexpected argument '%s'\n",
                   Arg.c_str());
      return 2;
    }
    if (Arg == "--dfs" || Arg == "--vector-clocks") {
      std::fprintf(stderr,
                   "error: %s was removed; use --engine hb-dfs (the "
                   "paper's graph DFS) or --engine hb (vector clocks, "
                   "the default)\n",
                   Arg.c_str());
      return 2;
    }
    if (!modeAccepts(O.M, Arg)) {
      std::fprintf(stderr, "error: unknown option '%s' for '%s %s'\n",
                   Arg.c_str(), Argv0, modeName(O.M));
      return 2;
    }
    if (Arg == "--root") {
      const char *V = Value("--root");
      if (!V)
        return 2;
      O.Root = V;
    } else if (Arg == "--seed") {
      const char *V = Value("--seed");
      if (!V || !parseCountArg("--seed", V, O.Seed))
        return 2;
    } else if (Arg == "--latency") {
      const char *V = Value("--latency");
      if (!V || !parseCountArg("--latency", V, O.FixedLatency))
        return 2;
    } else if (Arg == "--raw") {
      O.Raw = true;
    } else if (Arg == "--no-explore") {
      O.Explore = false;
    } else if (Arg == "--engine") {
      const char *V = Value("--engine");
      if (!V)
        return 2;
      if (!parseEngineKind(V, O.Engine)) {
        std::fprintf(stderr,
                     "error: unknown engine '%s' (expected hb, hb-dfs, "
                     "shb, or wcp)\n",
                     V);
        return 2;
      }
    } else if (Arg == "--predict") {
      O.Predict = true;
    } else if (Arg == "--suppressions") {
      const char *V = Value("--suppressions");
      if (!V)
        return 2;
      O.SuppressionsFile = V;
    } else if (Arg == "--sample-rate") {
      const char *V = Value("--sample-rate");
      if (!V || !parseRateArg("--sample-rate", V, O.SampleRate))
        return 2;
    } else if (Arg == "--sample-strategy") {
      const char *V = Value("--sample-strategy");
      if (!V)
        return 2;
      if (!sample::parseSamplingStrategy(V, O.SampleStrategy)) {
        std::fprintf(stderr,
                     "error: unknown sampling strategy '%s' (expected "
                     "per-location, per-pair, or adaptive)\n",
                     V);
        return 2;
      }
    } else if (Arg == "--trace") {
      O.Trace = true;
    } else if (Arg == "--record") {
      const char *V = Value("--record");
      if (!V)
        return 2;
      O.RecordFile = V;
    } else if (Arg == "--sites") {
      const char *V = Value("--sites");
      if (!V || !parseCountArg("--sites", V, O.Sites))
        return 2;
    } else if (Arg == "--jobs") {
      const char *V = Value("--jobs");
      if (!V || !parseCountArg("--jobs", V, O.Jobs))
        return 2;
      if (O.Jobs == 0) {
        std::fprintf(stderr, "error: --jobs must be at least 1\n");
        return 2;
      }
    } else if (Arg == "--traces") {
      const char *V = Value("--traces");
      if (!V)
        return 2;
      O.TracesDir = V;
    } else if (Arg == "--precision") {
      O.Precision = true;
    } else if (Arg == "--static-only") {
      O.StaticOnly = true;
    } else if (Arg == "--json") {
      const char *V = Value("--json");
      if (!V)
        return 2;
      O.JsonFile = V;
    } else if (Arg == "--metrics") {
      O.Metrics = true;
    }
  }
  if (NeedsPositional() && O.Index.empty()) {
    std::fprintf(stderr, "error: '%s' expects a page argument\n",
                 modeName(O.M));
    return 2;
  }
  if (O.M == Mode::Replay && O.TraceFile.empty()) {
    std::fprintf(stderr, "error: 'replay' expects a trace-file argument\n");
    return 2;
  }
  if (O.M == Mode::Batch && O.TracesDir.empty()) {
    std::fprintf(stderr, "error: 'batch' requires --traces DIR\n");
    return 2;
  }
  return 0;
}

/// Loads --suppressions when given. Returns false (exit 1) on a parse
/// error; \p Loaded says whether \p File holds anything.
bool loadSuppressions(const std::string &Path, triage::SuppressionFile &File,
                      bool &Loaded) {
  Loaded = false;
  if (Path.empty())
    return true;
  std::string Error;
  if (!triage::SuppressionFile::load(Path, File, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return false;
  }
  Loaded = true;
  return true;
}

/// Warns (stderr) about suppression entries that matched nothing, so
/// stale suppressions are noticed rather than rotting silently.
void warnUnmatchedSuppressions(const triage::SuppressionFile &File,
                               const std::vector<uint64_t> &Hits) {
  for (size_t I = 0; I < File.entries().size(); ++I)
    if (I >= Hits.size() || Hits[I] == 0)
      std::fprintf(stderr, "warning: suppression '%s' matched nothing\n",
                   File.entries()[I].Name.c_str());
}

/// Offline mode: deserialize a recorded trace and rerun detection.
int replayMain(const CliOptions &O) {
  std::ifstream In(O.TraceFile, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s\n", O.TraceFile.c_str());
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  TraceLog Log;
  std::string Error;
  if (!TraceLog::deserialize(Buffer.str(), Log, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", O.TraceFile.c_str(),
                 Error.c_str());
    return 1;
  }
  Log.setSource(O.TraceFile);
  triage::SuppressionFile Suppressions;
  bool HaveSuppressions = false;
  if (!loadSuppressions(O.SuppressionsFile, Suppressions, HaveSuppressions))
    return 1;
  detect::ReplayOptions Opts;
  Opts.Detector.Engine = O.Engine;
  // Replay has no --seed; the default stream keeps repeated replays of
  // the same trace byte-identical.
  Opts.Detector.Sampling = O.samplingOptions(/*Seed=*/1);
  Opts.Predict = O.Predict;
  detect::ReplayResult R = detect::replayTrace(Log, Opts);
  if (HaveSuppressions) {
    detect::FilterCounts Counts;
    Counts.Kept = static_cast<size_t>(R.Stats.Attrition.Kept);
    std::vector<uint64_t> Hits;
    R.FilteredRaces = triage::applySuppressions(R.FilteredRaces, R.Hb,
                                                Suppressions, &Counts,
                                                &Hits);
    R.Stats.Attrition.Suppressed += Counts.Suppressed;
    R.Stats.Attrition.Kept = Counts.Kept;
    R.Stats.Filtered = detect::tally(R.FilteredRaces);
    warnUnmatchedSuppressions(Suppressions, Hits);
  }
  std::printf("webracer: replaying %s (%zu events)\n", O.TraceFile.c_str(),
              Log.size());
  obs::Json Doc = buildReplayReport(O.TraceFile, R);
  printReportText(withoutMember(Doc, "races"));
  if (!O.JsonFile.empty() && !writeReportFile(O.JsonFile, Doc))
    return 1;
  if (O.Metrics)
    printMetrics(R.Stats);
  const std::vector<detect::Race> &Races =
      O.Raw ? R.RawRaces : R.FilteredRaces;
  std::printf("\n%s races: %s\n", O.Raw ? "raw" : "filtered",
              detect::summaryLine(Races).c_str());
  std::printf("%s", detect::describeRaces(Races, R.Hb).c_str());
  printPredictionSummary(R.Predictions);
  return Races.empty() ? 0 : 1;
}

/// Corpus mode: run the synthetic Fortune-100 corpus, optionally in
/// parallel, and print Table 1-style aggregates plus throughput.
int corpusMain(const CliOptions &O) {
  triage::SuppressionFile Suppressions;
  bool HaveSuppressions = false;
  if (!loadSuppressions(O.SuppressionsFile, Suppressions, HaveSuppressions))
    return 1;
  std::printf("webracer: building corpus (seed %llu)...\n",
              static_cast<unsigned long long>(O.Seed));
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(O.Seed);
  if (O.Sites && O.Sites < Corpus.size())
    Corpus.resize(O.Sites);
  webracer::SessionOptions Opts;
  Opts.Detector.Engine = O.Engine;
  // runSite mixes each site's pre-drawn seed into this base, so the
  // per-site streams are independent yet --jobs invariant.
  Opts.Detector.Sampling = O.samplingOptions(O.Seed);
  if (HaveSuppressions)
    Opts.Suppressions = &Suppressions;
  // Corpus reports always carry the wr_prediction section: the corpus
  // seeds post-first-race and interval-skip patterns precisely so the
  // SHB/WCP deltas are measured alongside Table 1/2 (bench/baseline.json
  // and tools/diff_baseline.py track the headline counters).
  Opts.Predict = true;
  unsigned Jobs = static_cast<unsigned>(O.Jobs);
  std::printf("running %zu sites with %u job(s)...\n", Corpus.size(), Jobs);
  auto Start = std::chrono::steady_clock::now();
  sites::CorpusStats Stats = runCorpus(Corpus, Opts, O.Seed, Jobs);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  std::printf("\n%zu sites in %.2fs (%.1f sites/sec)\n", Stats.Sites.size(),
              Secs, Secs > 0 ? static_cast<double>(Stats.Sites.size()) / Secs
                             : 0.0);
  if (HaveSuppressions)
    warnUnmatchedSuppressions(Suppressions, Stats.suppressionHits());
  // The --json document excludes timing so it is byte-identical for any
  // --jobs count; per-site rows are elided from the terminal rendering.
  obs::Json Doc = sites::buildCorpusReport("fortune100", Stats);
  printReportText(withoutMember(Doc, "sites"));
  if (!O.JsonFile.empty() && !writeReportFile(O.JsonFile, Doc))
    return 1;
  if (O.Metrics)
    printMetrics(Stats.aggregate());
  return 0;
}

/// Batch mode: deduplicating ingest of a directory of recorded traces.
int batchMain(const CliOptions &O) {
  triage::SuppressionFile Suppressions;
  bool HaveSuppressions = false;
  if (!loadSuppressions(O.SuppressionsFile, Suppressions, HaveSuppressions))
    return 1;
  std::vector<std::string> Paths;
  std::string Error;
  if (!triage::listTraceFiles(O.TracesDir, Paths, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "error: no .wrt traces in %s\n",
                 O.TracesDir.c_str());
    return 1;
  }
  triage::BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(O.Jobs);
  Opts.Replay.Detector.Engine = O.Engine;
  Opts.Replay.Detector.Sampling = O.samplingOptions(/*Seed=*/1);
  Opts.Replay.Predict = O.Predict;
  if (HaveSuppressions)
    Opts.Suppressions = &Suppressions;
  std::printf("webracer: ingesting %zu trace(s) from %s with %llu "
              "job(s)...\n",
              Paths.size(), O.TracesDir.c_str(),
              static_cast<unsigned long long>(O.Jobs));
  triage::BatchResult R = triage::runBatch(Paths, Opts);
  for (const triage::TraceIngest &In : R.Traces)
    if (!In.Ok)
      std::fprintf(stderr, "error: %s: %s\n", In.Path.c_str(),
                   In.Error.c_str());
  if (HaveSuppressions)
    warnUnmatchedSuppressions(Suppressions, R.SuppressionHits);
  obs::Json Doc = triage::buildBatchReport(O.TracesDir, R);
  printReportText(Doc);
  if (!O.JsonFile.empty() && !writeReportFile(O.JsonFile, Doc))
    return 1;
  if (O.Metrics)
    printMetrics(R.Aggregate);
  return R.TracesFailed ? 1 : 0;
}

/// Cross-check mode: static analysis alone (--static-only), the
/// static-vs-dynamic comparison, or the per-guard-class precision
/// accounting (--precision).
int crossCheckMain(const CliOptions &O) {
  std::error_code Ec;
  if (!fs::exists(O.Index, Ec)) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 O.Index.string().c_str());
    return 1;
  }
  analysis::PageSpec Page =
      pageSpecFromDisk(O.Index, O.Root, O.FixedLatency);

  if (O.StaticOnly) {
    analysis::StaticAnalysis A =
        analysis::analyzePage(Page.Html, Page.resolver());
    std::printf("webracer: static analysis of %s (%zu resources)\n",
                Page.EntryUrl.c_str(), Page.Resources.size());
    std::printf("effect sources: %zu, must-hb edges: %zu\n",
                A.Graph.sources().size(), A.Graph.numEdges());
    if (O.Trace)
      std::printf("\n-- static must-hb graph --\n%s\n",
                  A.Graph.toString().c_str());
    std::printf("\npredicted races: %zu\n", A.Races.size());
    for (const analysis::PredictedRace &P : A.Races)
      std::printf("  %s\n", analysis::toString(P).c_str());
    for (const std::string &Note : A.Notes)
      std::printf("note: %s\n", Note.c_str());
    return A.Races.empty() ? 0 : 1;
  }

  analysis::CrossCheckOptions CkOpts;
  CkOpts.Session.Browser.Seed = O.Seed;
  CkOpts.Session.AutoExplore = O.Explore;
  CkOpts.Session.Detector.Engine = O.Engine;
  // Measure against everything the dynamic semantics produced; the
  // Sec. 5.3 filters are reporting refinements, not ground truth.
  CkOpts.UseFilteredRaces = false;
  analysis::CrossCheckResult R = analysis::crossCheck(Page, CkOpts);

  if (O.Precision) {
    std::printf("webracer: static precision of %s (%zu resources, seed "
                "%llu)\n\n",
                Page.EntryUrl.c_str(), Page.Resources.size(),
                static_cast<unsigned long long>(O.Seed));
    const analysis::StaticPrecision &P = R.Precision;
    std::printf("%-20s %9s %9s %7s\n", "guard class", "predicted",
                "confirmed", "refuted");
    static const analysis::GuardClass Classes[3] = {
        analysis::GuardClass::Unguarded,
        analysis::GuardClass::GuardedOneSide,
        analysis::GuardClass::GuardedBothSides};
    for (analysis::GuardClass C : Classes) {
      const analysis::GuardClassCounts &N =
          P.ByClass[static_cast<size_t>(C)];
      std::printf("%-20s %9llu %9llu %7llu\n", analysis::toString(C),
                  static_cast<unsigned long long>(N.Predicted),
                  static_cast<unsigned long long>(N.Confirmed),
                  static_cast<unsigned long long>(N.Refuted));
    }
    std::printf("%-20s %9llu %9llu %7llu\n", "total",
                static_cast<unsigned long long>(P.Predicted),
                static_cast<unsigned long long>(P.Confirmed),
                static_cast<unsigned long long>(P.Refuted));
    std::printf("\nrefuted by guards: %llu (guarded-both-sides with no "
                "dynamic counterpart)\n",
                static_cast<unsigned long long>(P.RefutedByGuards));
    std::printf("recall: %s, missed dynamic races: %zu\n",
                R.recall() == 1.0 ? "1.00" : "DEGRADED",
                R.missedCount());
    for (const analysis::PredictedRace &Pr : R.Confirmed)
      std::printf("  [confirmed] %s\n", analysis::toString(Pr).c_str());
    for (const analysis::PredictedRace &Pr : R.Refuted)
      std::printf("  [refuted]   %s\n", analysis::toString(Pr).c_str());
  } else {
    std::printf("webracer: cross-check of %s (%zu resources, seed "
                "%llu)\n\n",
                Page.EntryUrl.c_str(), Page.Resources.size(),
                static_cast<unsigned long long>(O.Seed));
    std::printf("%s", analysis::formatReport(R).c_str());
  }
  obs::Json Doc = analysis::buildCrossCheckReport({R});
  if (!O.JsonFile.empty() && !writeReportFile(O.JsonFile, Doc))
    return 1;
  if (O.Metrics)
    printMetrics(R.Dynamic.Stats);
  return R.missedCount() == 0 ? 0 : 1;
}

/// Page mode: run detection over a page stored on disk.
int pageMain(const CliOptions &O) {
  std::error_code Ec;
  if (!fs::exists(O.Index, Ec)) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 O.Index.string().c_str());
    return 1;
  }
  triage::SuppressionFile Suppressions;
  bool HaveSuppressions = false;
  if (!loadSuppressions(O.SuppressionsFile, Suppressions, HaveSuppressions))
    return 1;

  webracer::SessionOptions Opts;
  Opts.Browser.Seed = O.Seed;
  Opts.AutoExplore = O.Explore;
  Opts.Detector.Engine = O.Engine;
  Opts.Detector.Sampling = O.samplingOptions(O.Seed);
  Opts.Predict = O.Predict;
  if (HaveSuppressions)
    Opts.Suppressions = &Suppressions;
  Opts.RecordTrace = O.Trace || !O.RecordFile.empty();
  webracer::Session S(Opts);

  // Register the tree under the resource root.
  size_t Registered = 0;
  if (fs::is_directory(O.Root, Ec)) {
    for (const auto &Entry :
         fs::recursive_directory_iterator(O.Root, Ec)) {
      if (!Entry.is_regular_file())
        continue;
      std::string Url =
          fs::relative(Entry.path(), O.Root, Ec).generic_string();
      std::string Body = readFile(Entry.path());
      if (O.FixedLatency)
        S.network().addResource(Url, Body, O.FixedLatency);
      else
        S.network().addResourceWithJitter(Url, Body, 500, 3000);
      ++Registered;
    }
  }
  std::string IndexUrl =
      fs::relative(O.Index, O.Root, Ec).generic_string();
  if (!S.network().hasResource(IndexUrl)) {
    S.network().addResource(IndexUrl, readFile(O.Index), 10);
    ++Registered;
  } else {
    // Make the page itself arrive promptly.
    S.network().overrideLatency(IndexUrl, 10);
  }

  std::printf("webracer: loading %s (%zu resources, seed %llu)\n",
              IndexUrl.c_str(), Registered,
              static_cast<unsigned long long>(O.Seed));
  webracer::SessionResult R = S.run(IndexUrl);
  if (HaveSuppressions)
    warnUnmatchedSuppressions(Suppressions, R.SuppressionHits);

  obs::Json Doc = webracer::buildRunReport(IndexUrl, R, S.browser().hb(),
                                           /*IncludeTiming=*/true);
  printReportText(withoutMember(Doc, "races"));
  if (!R.ParseErrors.empty()) {
    std::printf("script parse errors:\n");
    for (const std::string &E : R.ParseErrors)
      std::printf("  %s\n", E.c_str());
  }
  if (!R.Crashes.empty()) {
    std::printf("uncaught exceptions (hidden crashes):\n");
    for (const std::string &C : R.Crashes)
      std::printf("  %s\n", C.c_str());
  }

  if (!O.RecordFile.empty() && S.trace()) {
    std::ofstream Out(O.RecordFile, std::ios::binary | std::ios::trunc);
    std::string Bytes = S.trace()->serialize();
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   O.RecordFile.c_str());
      return 1;
    }
    std::printf("trace: %zu events, %zu bytes -> %s\n",
                S.trace()->size(), Bytes.size(), O.RecordFile.c_str());
  }

  if (!O.JsonFile.empty() && !writeReportFile(O.JsonFile, Doc))
    return 1;
  if (O.Metrics)
    printMetrics(R.Stats);

  const std::vector<detect::Race> &Races =
      O.Raw ? R.RawRaces : R.FilteredRaces;
  std::printf("\n%s races: %s\n", O.Raw ? "raw" : "filtered",
              detect::summaryLine(Races).c_str());
  std::printf("%s", detect::describeRaces(Races,
                                          S.browser().hb()).c_str());
  printPredictionSummary(R.Predictions);

  if (O.Trace && S.trace())
    std::printf("\n-- trace --\n%s", S.trace()->toString().c_str());
  return Races.empty() ? 0 : 1;
}

/// Maps a pre-subcommand invocation onto the new interface: finds the
/// mode-selecting flag (or positional page), strips it, and returns the
/// remaining arguments for the shared parser. Prints the one-line
/// deprecation note naming the subcommand to migrate to.
bool legacyShim(int Argc, char **Argv, CliOptions &O,
                std::vector<std::string> &Args) {
  O.M = Mode::Page;
  bool HaveMode = false;
  bool Precision = false, StaticOnly = false;
  std::vector<std::string> Rest;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--corpus") {
      O.M = Mode::Corpus;
      HaveMode = true;
    } else if (Arg == "--replay") {
      O.M = Mode::Replay;
      HaveMode = true;
      if (I + 1 < Argc)
        Rest.push_back(Argv[++I]);
    } else if (Arg == "--cross-check") {
      O.M = Mode::CrossCheck;
      HaveMode = true;
    } else if (Arg == "--static-analyze") {
      O.M = Mode::CrossCheck;
      StaticOnly = true;
      HaveMode = true;
    } else if (Arg == "--static-precision") {
      O.M = Mode::CrossCheck;
      Precision = true;
      HaveMode = true;
    } else {
      if (I == 1 && !Arg.empty() && Arg[0] != '-' && !HaveMode) {
        // Old positional page argument.
        HaveMode = true;
      }
      Rest.push_back(std::move(Arg));
    }
  }
  if (!HaveMode)
    return false;
  if (StaticOnly)
    Rest.push_back("--static-only");
  if (Precision)
    Rest.push_back("--precision");
  std::fprintf(stderr,
               "note: flag-style invocation is deprecated; use "
               "'%s %s ...'\n",
               Argv[0], modeName(O.M));
  Args = std::move(Rest);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);

  CliOptions O;
  std::vector<std::string> Args;
  std::string First = Argv[1];
  if (First == "--help" || First == "-h") {
    usage(Argv[0]);
    return 0;
  }
  if (First == "page") {
    O.M = Mode::Page;
  } else if (First == "replay") {
    O.M = Mode::Replay;
  } else if (First == "corpus") {
    O.M = Mode::Corpus;
  } else if (First == "cross-check") {
    O.M = Mode::CrossCheck;
  } else if (First == "batch") {
    O.M = Mode::Batch;
  } else {
    // Not a subcommand: accept the pre-subcommand flag spellings (and
    // the bare positional page of the original interface, recognized by
    // the page actually existing on disk) with a deprecation note;
    // everything else is a usage error.
    std::error_code Ec;
    if (!First.empty() && First[0] != '-' && !fs::exists(First, Ec)) {
      std::fprintf(stderr, "error: unknown subcommand '%s'\n",
                   First.c_str());
      return usage(Argv[0]);
    }
    if (!legacyShim(Argc, Argv, O, Args))
      return usage(Argv[0]);
    if (int Rc = parseModeArgs(O, Args, Argv[0]))
      return Rc;
    switch (O.M) {
    case Mode::Page:
      return pageMain(O);
    case Mode::Replay:
      return replayMain(O);
    case Mode::Corpus:
      return corpusMain(O);
    case Mode::CrossCheck:
      return crossCheckMain(O);
    case Mode::Batch:
      return batchMain(O);
    }
    return 2;
  }

  for (int I = 2; I < Argc; ++I)
    Args.push_back(Argv[I]);
  if (int Rc = parseModeArgs(O, Args, Argv[0]))
    return Rc;
  switch (O.M) {
  case Mode::Page:
    return pageMain(O);
  case Mode::Replay:
    return replayMain(O);
  case Mode::Corpus:
    return corpusMain(O);
  case Mode::CrossCheck:
    return crossCheckMain(O);
  case Mode::Batch:
    return batchMain(O);
  }
  return 2;
}

//===- tools/webracer_cli.cpp - WebRacer command-line front end ----------------===//
//
// Runs race detection over a page stored on disk:
//
//   webracer-cli path/to/index.html [options]
//
// Every file under the page's directory (or --root DIR) is registered on
// the simulated network under its path relative to that directory, so
// <script src="js/app.js"> resolves to <root>/js/app.js.
//
// Two additional entry points skip the positional page argument:
//
//   webracer-cli --replay trace.bin [--raw] [--engine NAME] [--predict]
//       replay a recorded trace through the detector and filters offline
//   webracer-cli --corpus [--sites N] [--jobs N] [--seed N]
//       run the synthetic Fortune-100 corpus (optionally in parallel)
//
// Options:
//   --root DIR       resource root (default: the page's directory)
//   --seed N         determinism seed (default 1)
//   --latency N      fixed resource latency in microseconds
//                    (default: jitter 500..3000)
//   --raw            print unfiltered races instead of filtered ones
//   --no-explore     skip automatic exploration (Sec. 5.2.2)
//   --engine NAME    partial-order engine: hb (default), hb-dfs, shb, or
//                    wcp. The observed race output is always computed
//                    under happens-before; shb/wcp add a predictive pass
//                    over the recorded execution (implies --predict)
//   --predict        run the SHB and WCP predictive passes after the
//                    observed run and report their candidate races and
//                    wr_prediction stats
//   --dfs            use the paper's graph-DFS HB representation instead
//                    of the default vector clocks (same as --engine
//                    hb-dfs)
//   --vector-clocks  use the vector-clock HB representation (the default;
//                    kept for script compatibility)
//   --trace          dump the full instrumentation trace
//   --record FILE    record the execution trace and write it to FILE in
//                    the binary trace format (replay with --replay)
//   --replay FILE    skip the browser: deserialize FILE and run
//                    detection + filters offline over the trace
//   --corpus         run the synthetic Fortune-100 corpus instead of a
//                    page from disk
//   --sites N        with --corpus: only the first N sites (default 100)
//   --jobs N         with --corpus: thread-pool size (default 1; must be
//                    at least 1)
//   --json FILE      write the schema-1 JSON report to FILE (page,
//                    replay, corpus, and cross-check modes; corpus
//                    reports are byte-identical for any --jobs count)
//   --metrics        dump the run statistics as a name-sorted metrics
//                    listing after the report
//   --static-analyze predict races ahead of time without executing the
//                    page; prints the predicted races (and, with --trace,
//                    the static must-HB graph)
//   --cross-check    run the static analyzer AND a dynamic session, then
//                    print the precision/recall comparison
//   --static-precision
//                    like --cross-check, but report the per-guard-class
//                    precision accounting: predictions split into
//                    unguarded / guarded-one-side / guarded-both-sides
//                    with confirmed/refuted counts and the number of
//                    false positives the guard analysis explains away
//
// Count-valued options take strict unsigned decimal integers; anything
// else (including a bare "-" or trailing junk) is a usage error.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include "webracer/WebRacer.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

using namespace wr;
namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <index.html> [--root DIR] [--seed N] [--latency N] "
      "[--raw] [--no-explore] [--engine hb|hb-dfs|shb|wcp] [--predict] "
      "[--dfs] [--vector-clocks] [--trace] "
      "[--record FILE] [--json FILE] [--metrics] [--static-analyze] "
      "[--cross-check] [--static-precision]\n"
      "       %s --replay FILE [--raw] [--engine NAME] [--predict] "
      "[--json FILE] [--metrics]\n"
      "       %s --corpus [--sites N] [--jobs N] [--seed N] [--json FILE] "
      "[--metrics]\n",
      Argv0, Argv0, Argv0);
  return 2;
}

/// Strict unsigned parse for a count-valued flag; on failure prints a
/// usage error naming the flag and the offending value.
bool parseCountArg(const char *Flag, const char *Value, uint64_t &Out) {
  if (parseUint64(Value, Out))
    return true;
  std::fprintf(stderr, "error: %s expects an unsigned integer, got '%s'\n",
               Flag, Value);
  return false;
}

/// Serializes \p Doc with the stable JSON backend and writes it to
/// \p Path; false (with a message) when the file cannot be written.
bool writeReportFile(const std::string &Path, const obs::Json &Doc) {
  std::string Bytes;
  obs::JsonReporter Reporter(Bytes);
  Reporter.emit(Doc);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.flush();
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  std::printf("report: %zu bytes -> %s\n", Bytes.size(), Path.c_str());
  return true;
}

/// Renders \p Doc with the text backend onto stdout.
void printReportText(const obs::Json &Doc) {
  std::string Out;
  obs::TextReporter Reporter(Out);
  Reporter.emit(Doc);
  std::printf("%s", Out.c_str());
}

/// \p Doc minus the member named \p Key (races render separately via
/// describeRaces; per-site rows are too bulky for a terminal).
obs::Json withoutMember(const obs::Json &Doc, const std::string &Key) {
  obs::Json Out = obs::Json::object();
  for (const auto &[Name, Value] : Doc.members())
    if (Name != Key)
      Out.set(Name, Value);
  return Out;
}

/// Snapshots \p Stats into a registry and dumps it name-sorted.
void printMetrics(const obs::RunStats &Stats) {
  obs::MetricsRegistry Registry;
  Stats.exportTo(Registry, "webracer");
  std::printf("\n-- metrics --\n%s", Registry.toText().c_str());
}

/// The schema-1 report for an offline replay: stats plus both race sets.
obs::Json buildReplayReport(const std::string &Name,
                            const detect::ReplayResult &R) {
  obs::Json Doc = obs::makeReportEnvelope("replay", Name);
  Doc.set("stats", R.Stats.toJson());
  obs::Json RawArr = obs::Json::array();
  for (const detect::Race &Race : R.RawRaces)
    RawArr.push(webracer::raceToJson(Race, R.Hb));
  obs::Json FilteredArr = obs::Json::array();
  for (const detect::Race &Race : R.FilteredRaces)
    FilteredArr.push(webracer::raceToJson(Race, R.Hb));
  obs::Json Races = obs::Json::object();
  Races.set("raw", std::move(RawArr));
  Races.set("filtered", std::move(FilteredArr));
  if (!R.Predictions.empty())
    Races.set("predicted",
              webracer::predictionsToJson(R.Predictions, R.Hb));
  Doc.set("races", std::move(Races));
  return Doc;
}

/// One summary line per predictive pass (page and replay modes).
void printPredictionSummary(
    const std::vector<detect::PredictionResult> &Predictions) {
  for (const detect::PredictionResult &P : Predictions)
    std::printf("%s prediction: %zu candidate(s), %zu observed, "
                "%zu predicted, %llu dropped edge(s)\n",
                toString(P.Engine), P.Races.size(), P.observedMatched(),
                P.predictedCount(),
                static_cast<unsigned long long>(P.DroppedEdges));
}

/// Builds a PageSpec from the files on disk under \p Root, mirroring the
/// dynamic mode's resource registration.
analysis::PageSpec pageSpecFromDisk(const fs::path &Index,
                                    const fs::path &Root,
                                    uint64_t FixedLatency) {
  analysis::PageSpec Page;
  std::error_code Ec;
  Page.Name = Index.filename().string();
  Page.EntryUrl = fs::relative(Index, Root, Ec).generic_string();
  Page.Html = readFile(Index);
  uint64_t Latency = FixedLatency ? FixedLatency : 1500;
  if (fs::is_directory(Root, Ec)) {
    for (const auto &Entry : fs::recursive_directory_iterator(Root, Ec)) {
      if (!Entry.is_regular_file())
        continue;
      std::string Url =
          fs::relative(Entry.path(), Root, Ec).generic_string();
      if (Url == Page.EntryUrl)
        continue;
      Page.Resources.push_back({Url, readFile(Entry.path()), Latency});
    }
  }
  return Page;
}

/// Offline mode: deserialize a recorded trace and rerun detection.
int replayMain(const std::string &TraceFile, bool Raw, bool UseDfs,
               EngineKind Engine, bool Predict,
               const std::string &JsonFile, bool Metrics) {
  std::ifstream In(TraceFile, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s\n", TraceFile.c_str());
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  TraceLog Log;
  std::string Error;
  if (!TraceLog::deserialize(Buffer.str(), Log, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", TraceFile.c_str(),
                 Error.c_str());
    return 1;
  }
  detect::ReplayOptions Opts;
  Opts.Detector.Engine = Engine;
  Opts.Predict = Predict;
  Opts.UseVectorClocks = !UseDfs;
  detect::ReplayResult R = detect::replayTrace(Log, Opts);
  std::printf("webracer: replaying %s (%zu events)\n", TraceFile.c_str(),
              Log.size());
  obs::Json Doc = buildReplayReport(TraceFile, R);
  printReportText(withoutMember(Doc, "races"));
  if (!JsonFile.empty() && !writeReportFile(JsonFile, Doc))
    return 1;
  if (Metrics)
    printMetrics(R.Stats);
  const std::vector<detect::Race> &Races = Raw ? R.RawRaces : R.FilteredRaces;
  std::printf("\n%s races: %s\n", Raw ? "raw" : "filtered",
              detect::summaryLine(Races).c_str());
  std::printf("%s", detect::describeRaces(Races, R.Hb).c_str());
  printPredictionSummary(R.Predictions);
  return Races.empty() ? 0 : 1;
}

/// Corpus mode: run the synthetic Fortune-100 corpus, optionally in
/// parallel, and print Table 1-style aggregates plus throughput.
int corpusMain(size_t Sites, unsigned Jobs, uint64_t Seed,
               EngineKind Engine, const std::string &JsonFile,
               bool Metrics) {
  std::printf("webracer: building corpus (seed %llu)...\n",
              static_cast<unsigned long long>(Seed));
  std::vector<sites::GeneratedSite> Corpus =
      sites::buildFortune100Corpus(Seed);
  if (Sites && Sites < Corpus.size())
    Corpus.resize(Sites);
  webracer::SessionOptions Opts;
  Opts.Detector.Engine = Engine;
  // Corpus reports always carry the wr_prediction section: the corpus
  // seeds post-first-race and interval-skip patterns precisely so the
  // SHB/WCP deltas are measured alongside Table 1/2 (bench/baseline.json
  // and tools/diff_baseline.py track the headline counters).
  Opts.Predict = true;
  std::printf("running %zu sites with %u job(s)...\n", Corpus.size(), Jobs);
  auto Start = std::chrono::steady_clock::now();
  sites::CorpusStats Stats = runCorpus(Corpus, Opts, Seed, Jobs);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  std::printf("\n%zu sites in %.2fs (%.1f sites/sec)\n", Stats.Sites.size(),
              Secs, Secs > 0 ? static_cast<double>(Stats.Sites.size()) / Secs
                             : 0.0);
  // The --json document excludes timing so it is byte-identical for any
  // --jobs count; per-site rows are elided from the terminal rendering.
  obs::Json Doc = sites::buildCorpusReport("fortune100", Stats);
  printReportText(withoutMember(Doc, "sites"));
  if (!JsonFile.empty() && !writeReportFile(JsonFile, Doc))
    return 1;
  if (Metrics)
    printMetrics(Stats.aggregate());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);

  fs::path Index;
  fs::path Root;
  uint64_t Seed = 1;
  uint64_t FixedLatency = 0;
  bool Raw = false, Explore = true, Dfs = false, Trace = false;
  bool StaticAnalyze = false, CrossCheck = false, CorpusMode = false;
  bool StaticPrecisionMode = false;
  bool Metrics = false;
  EngineKind Engine = EngineKind::Hb;
  bool Predict = false;
  std::string RecordFile, ReplayFile, JsonFile;
  uint64_t Sites = 0;
  uint64_t Jobs = 1;

  int I = 1;
  if (Argv[1][0] != '-') {
    Index = Argv[1];
    Root = Index.parent_path();
    I = 2;
  }
  for (; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--root" && I + 1 < Argc) {
      Root = Argv[++I];
    } else if (Arg == "--seed" && I + 1 < Argc) {
      if (!parseCountArg("--seed", Argv[++I], Seed))
        return 2;
    } else if (Arg == "--latency" && I + 1 < Argc) {
      if (!parseCountArg("--latency", Argv[++I], FixedLatency))
        return 2;
    } else if (Arg == "--raw") {
      Raw = true;
    } else if (Arg == "--no-explore") {
      Explore = false;
    } else if (Arg == "--vector-clocks") {
      Dfs = false; // The default; accepted for script compatibility.
    } else if (Arg == "--dfs") {
      Dfs = true;
    } else if (Arg == "--engine" && I + 1 < Argc) {
      if (!parseEngineKind(Argv[++I], Engine)) {
        std::fprintf(stderr,
                     "error: unknown engine '%s' (expected hb, hb-dfs, "
                     "shb, or wcp)\n",
                     Argv[I]);
        return 2;
      }
    } else if (Arg == "--predict") {
      Predict = true;
    } else if (Arg == "--trace") {
      Trace = true;
    } else if (Arg == "--record" && I + 1 < Argc) {
      RecordFile = Argv[++I];
    } else if (Arg == "--replay" && I + 1 < Argc) {
      ReplayFile = Argv[++I];
    } else if (Arg == "--corpus") {
      CorpusMode = true;
    } else if (Arg == "--sites" && I + 1 < Argc) {
      if (!parseCountArg("--sites", Argv[++I], Sites))
        return 2;
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      if (!parseCountArg("--jobs", Argv[++I], Jobs))
        return 2;
      if (Jobs == 0) {
        std::fprintf(stderr, "error: --jobs must be at least 1\n");
        return 2;
      }
    } else if (Arg == "--json" && I + 1 < Argc) {
      JsonFile = Argv[++I];
    } else if (Arg == "--metrics") {
      Metrics = true;
    } else if (Arg == "--static-analyze") {
      StaticAnalyze = true;
    } else if (Arg == "--cross-check") {
      CrossCheck = true;
    } else if (Arg == "--static-precision") {
      StaticPrecisionMode = true;
    } else {
      return usage(Argv[0]);
    }
  }

  if (!ReplayFile.empty())
    return replayMain(ReplayFile, Raw, Dfs, Engine, Predict, JsonFile,
                      Metrics);
  if (CorpusMode)
    return corpusMain(Sites, static_cast<unsigned>(Jobs), Seed, Engine,
                      JsonFile, Metrics);
  if (Index.empty())
    return usage(Argv[0]);

  std::error_code Ec;
  if (!fs::exists(Index, Ec)) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 Index.string().c_str());
    return 1;
  }

  if (StaticAnalyze) {
    analysis::PageSpec Page = pageSpecFromDisk(Index, Root, FixedLatency);
    analysis::StaticAnalysis A =
        analysis::analyzePage(Page.Html, Page.resolver());
    std::printf("webracer: static analysis of %s (%zu resources)\n",
                Page.EntryUrl.c_str(), Page.Resources.size());
    std::printf("effect sources: %zu, must-hb edges: %zu\n",
                A.Graph.sources().size(), A.Graph.numEdges());
    if (Trace)
      std::printf("\n-- static must-hb graph --\n%s\n",
                  A.Graph.toString().c_str());
    std::printf("\npredicted races: %zu\n", A.Races.size());
    for (const analysis::PredictedRace &P : A.Races)
      std::printf("  %s\n", analysis::toString(P).c_str());
    for (const std::string &Note : A.Notes)
      std::printf("note: %s\n", Note.c_str());
    return A.Races.empty() ? 0 : 1;
  }

  if (StaticPrecisionMode) {
    analysis::PageSpec Page = pageSpecFromDisk(Index, Root, FixedLatency);
    analysis::CrossCheckOptions CkOpts;
    CkOpts.Session.Browser.Seed = Seed;
    CkOpts.Session.AutoExplore = Explore;
    CkOpts.Session.UseVectorClocks = !Dfs;
    CkOpts.UseFilteredRaces = false;
    analysis::CrossCheckResult R = analysis::crossCheck(Page, CkOpts);
    std::printf("webracer: static precision of %s (%zu resources, seed "
                "%llu)\n\n",
                Page.EntryUrl.c_str(), Page.Resources.size(),
                static_cast<unsigned long long>(Seed));
    const analysis::StaticPrecision &P = R.Precision;
    std::printf("%-20s %9s %9s %7s\n", "guard class", "predicted",
                "confirmed", "refuted");
    static const analysis::GuardClass Classes[3] = {
        analysis::GuardClass::Unguarded,
        analysis::GuardClass::GuardedOneSide,
        analysis::GuardClass::GuardedBothSides};
    for (analysis::GuardClass C : Classes) {
      const analysis::GuardClassCounts &N =
          P.ByClass[static_cast<size_t>(C)];
      std::printf("%-20s %9llu %9llu %7llu\n", analysis::toString(C),
                  static_cast<unsigned long long>(N.Predicted),
                  static_cast<unsigned long long>(N.Confirmed),
                  static_cast<unsigned long long>(N.Refuted));
    }
    std::printf("%-20s %9llu %9llu %7llu\n", "total",
                static_cast<unsigned long long>(P.Predicted),
                static_cast<unsigned long long>(P.Confirmed),
                static_cast<unsigned long long>(P.Refuted));
    std::printf("\nrefuted by guards: %llu (guarded-both-sides with no "
                "dynamic counterpart)\n",
                static_cast<unsigned long long>(P.RefutedByGuards));
    std::printf("recall: %s, missed dynamic races: %zu\n",
                R.recall() == 1.0 ? "1.00" : "DEGRADED",
                R.missedCount());
    for (const analysis::PredictedRace &Pr : R.Confirmed)
      std::printf("  [confirmed] %s\n", analysis::toString(Pr).c_str());
    for (const analysis::PredictedRace &Pr : R.Refuted)
      std::printf("  [refuted]   %s\n", analysis::toString(Pr).c_str());
    obs::Json Doc = analysis::buildCrossCheckReport({R});
    if (!JsonFile.empty() && !writeReportFile(JsonFile, Doc))
      return 1;
    if (Metrics)
      printMetrics(R.Dynamic.Stats);
    return R.missedCount() == 0 ? 0 : 1;
  }

  if (CrossCheck) {
    analysis::PageSpec Page = pageSpecFromDisk(Index, Root, FixedLatency);
    analysis::CrossCheckOptions CkOpts;
    CkOpts.Session.Browser.Seed = Seed;
    CkOpts.Session.AutoExplore = Explore;
    CkOpts.Session.UseVectorClocks = !Dfs;
    // Measure against everything the dynamic semantics produced; the
    // Sec. 5.3 filters are reporting refinements, not ground truth.
    CkOpts.UseFilteredRaces = false;
    analysis::CrossCheckResult R = analysis::crossCheck(Page, CkOpts);
    std::printf("webracer: cross-check of %s (%zu resources, seed "
                "%llu)\n\n",
                Page.EntryUrl.c_str(), Page.Resources.size(),
                static_cast<unsigned long long>(Seed));
    std::printf("%s", analysis::formatReport(R).c_str());
    obs::Json Doc = analysis::buildCrossCheckReport({R});
    if (!JsonFile.empty() && !writeReportFile(JsonFile, Doc))
      return 1;
    if (Metrics)
      printMetrics(R.Dynamic.Stats);
    return R.missedCount() == 0 ? 0 : 1;
  }

  webracer::SessionOptions Opts;
  Opts.Browser.Seed = Seed;
  Opts.AutoExplore = Explore;
  Opts.Detector.Engine = Engine;
  Opts.Predict = Predict;
  Opts.UseVectorClocks = !Dfs;
  Opts.RecordTrace = Trace || !RecordFile.empty();
  webracer::Session S(Opts);

  // Register the tree under the resource root.
  size_t Registered = 0;
  if (fs::is_directory(Root, Ec)) {
    for (const auto &Entry : fs::recursive_directory_iterator(Root, Ec)) {
      if (!Entry.is_regular_file())
        continue;
      std::string Url =
          fs::relative(Entry.path(), Root, Ec).generic_string();
      std::string Body = readFile(Entry.path());
      if (FixedLatency)
        S.network().addResource(Url, Body, FixedLatency);
      else
        S.network().addResourceWithJitter(Url, Body, 500, 3000);
      ++Registered;
    }
  }
  std::string IndexUrl =
      fs::relative(Index, Root, Ec).generic_string();
  if (!S.network().hasResource(IndexUrl)) {
    S.network().addResource(IndexUrl, readFile(Index), 10);
    ++Registered;
  } else {
    // Make the page itself arrive promptly.
    S.network().overrideLatency(IndexUrl, 10);
  }

  std::printf("webracer: loading %s (%zu resources, seed %llu)\n",
              IndexUrl.c_str(), Registered,
              static_cast<unsigned long long>(Seed));
  webracer::SessionResult R = S.run(IndexUrl);

  obs::Json Doc = webracer::buildRunReport(IndexUrl, R, S.browser().hb(),
                                           /*IncludeTiming=*/true);
  printReportText(withoutMember(Doc, "races"));
  if (!R.ParseErrors.empty()) {
    std::printf("script parse errors:\n");
    for (const std::string &E : R.ParseErrors)
      std::printf("  %s\n", E.c_str());
  }
  if (!R.Crashes.empty()) {
    std::printf("uncaught exceptions (hidden crashes):\n");
    for (const std::string &C : R.Crashes)
      std::printf("  %s\n", C.c_str());
  }

  if (!RecordFile.empty() && S.trace()) {
    std::ofstream Out(RecordFile, std::ios::binary | std::ios::trunc);
    std::string Bytes = S.trace()->serialize();
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", RecordFile.c_str());
      return 1;
    }
    std::printf("trace: %zu events, %zu bytes -> %s\n",
                S.trace()->size(), Bytes.size(), RecordFile.c_str());
  }

  if (!JsonFile.empty() && !writeReportFile(JsonFile, Doc))
    return 1;
  if (Metrics)
    printMetrics(R.Stats);

  const std::vector<detect::Race> &Races =
      Raw ? R.RawRaces : R.FilteredRaces;
  std::printf("\n%s races: %s\n", Raw ? "raw" : "filtered",
              detect::summaryLine(Races).c_str());
  std::printf("%s", detect::describeRaces(Races,
                                          S.browser().hb()).c_str());
  printPredictionSummary(R.Predictions);

  if (Trace && S.trace())
    std::printf("\n-- trace --\n%s", S.trace()->toString().c_str());
  return Races.empty() ? 0 : 1;
}

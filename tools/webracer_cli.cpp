//===- tools/webracer_cli.cpp - WebRacer command-line front end ----------------===//
//
// Runs race detection over a page stored on disk:
//
//   webracer-cli path/to/index.html [options]
//
// Every file under the page's directory (or --root DIR) is registered on
// the simulated network under its path relative to that directory, so
// <script src="js/app.js"> resolves to <root>/js/app.js.
//
// Options:
//   --root DIR       resource root (default: the page's directory)
//   --seed N         determinism seed (default 1)
//   --latency N      fixed resource latency in microseconds
//                    (default: jitter 500..3000)
//   --raw            print unfiltered races instead of filtered ones
//   --no-explore     skip automatic exploration (Sec. 5.2.2)
//   --vector-clocks  use the vector-clock HB representation
//   --trace          dump the full instrumentation trace
//
//===----------------------------------------------------------------------===//

#include "webracer/WebRacer.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace wr;
namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <index.html> [--root DIR] [--seed N] "
               "[--latency N] [--raw] [--no-explore] [--vector-clocks] "
               "[--trace]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  fs::path Index = Argv[1];
  fs::path Root = Index.parent_path();
  uint64_t Seed = 1;
  uint64_t FixedLatency = 0;
  bool Raw = false, Explore = true, VectorClocks = false, Trace = false;

  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--root" && I + 1 < Argc) {
      Root = Argv[++I];
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--latency" && I + 1 < Argc) {
      FixedLatency = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--raw") {
      Raw = true;
    } else if (Arg == "--no-explore") {
      Explore = false;
    } else if (Arg == "--vector-clocks") {
      VectorClocks = true;
    } else if (Arg == "--trace") {
      Trace = true;
    } else {
      return usage(Argv[0]);
    }
  }

  std::error_code Ec;
  if (!fs::exists(Index, Ec)) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 Index.string().c_str());
    return 1;
  }

  webracer::SessionOptions Opts;
  Opts.Browser.Seed = Seed;
  Opts.AutoExplore = Explore;
  Opts.UseVectorClocks = VectorClocks;
  Opts.RecordTrace = Trace;
  webracer::Session S(Opts);

  // Register the tree under the resource root.
  size_t Registered = 0;
  if (fs::is_directory(Root, Ec)) {
    for (const auto &Entry : fs::recursive_directory_iterator(Root, Ec)) {
      if (!Entry.is_regular_file())
        continue;
      std::string Url =
          fs::relative(Entry.path(), Root, Ec).generic_string();
      std::string Body = readFile(Entry.path());
      if (FixedLatency)
        S.network().addResource(Url, Body, FixedLatency);
      else
        S.network().addResourceWithJitter(Url, Body, 500, 3000);
      ++Registered;
    }
  }
  std::string IndexUrl =
      fs::relative(Index, Root, Ec).generic_string();
  if (!S.network().hasResource(IndexUrl)) {
    S.network().addResource(IndexUrl, readFile(Index), 10);
    ++Registered;
  } else {
    // Make the page itself arrive promptly.
    S.network().overrideLatency(IndexUrl, 10);
  }

  std::printf("webracer: loading %s (%zu resources, seed %llu)\n",
              IndexUrl.c_str(), Registered,
              static_cast<unsigned long long>(Seed));
  webracer::SessionResult R = S.run(IndexUrl);

  std::printf("operations: %zu, hb edges: %zu, explored events: %zu\n",
              R.Operations, R.HbEdges, R.Explore.EventsDispatched);
  if (!R.ParseErrors.empty()) {
    std::printf("script parse errors:\n");
    for (const std::string &E : R.ParseErrors)
      std::printf("  %s\n", E.c_str());
  }
  if (!R.Crashes.empty()) {
    std::printf("uncaught exceptions (hidden crashes):\n");
    for (const std::string &C : R.Crashes)
      std::printf("  %s\n", C.c_str());
  }

  const std::vector<detect::Race> &Races =
      Raw ? R.RawRaces : R.FilteredRaces;
  std::printf("\n%s races: %s\n", Raw ? "raw" : "filtered",
              detect::summaryLine(Races).c_str());
  std::printf("%s", detect::describeRaces(Races,
                                          S.browser().hb()).c_str());

  if (Trace && S.trace())
    std::printf("\n-- trace --\n%s", S.trace()->toString().c_str());
  return Races.empty() ? 0 : 1;
}

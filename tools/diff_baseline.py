#!/usr/bin/env python3
"""Diff the headline counters of two schema-1 corpus reports.

Usage: diff_baseline.py BASELINE.json CURRENT.json

Compares the deterministic headline counters (site count, aggregate
operations / HB edges / CHC queries, vector-clock chain and clock-arena
counters (clock_bytes / clock_merges / shared_clocks), intern and epoch
fast-path hit counters, detect-phase virtual time, the SHB/WCP
predictive-pass headline counters (wr_prediction candidates /
observed_matched / predicted totals and WCP's dropped edges), the
wr_sampling attrition group when the run sampled, raw and
filtered race totals per kind, filter attrition, and the
static-analysis precision tallies with their per-guard-class breakdown)
and prints one line per drifted counter. The
diff is WARN-ONLY: drift exits 0 so CI surfaces it without failing the
build (counters legitimately move when the corpus or detector changes;
refresh the baseline in the same PR). Only malformed input exits
nonzero.
"""

import json
import sys

HEADLINE_PATHS = [
    ("aggregate", "operations"),
    ("aggregate", "hb_edges"),
    ("aggregate", "chc_queries"),
    ("aggregate", "vc_chains"),
    ("aggregate", "clock_bytes"),
    ("aggregate", "clock_merges"),
    ("aggregate", "shared_clocks"),
    ("aggregate", "accesses"),
    ("aggregate", "tracked_locations"),
    ("aggregate", "interned_locations"),
    ("aggregate", "intern_hits"),
    ("aggregate", "epoch_hits"),
    ("aggregate", "wr_epochs", "reads"),
    ("aggregate", "wr_epochs", "epoch_reads"),
    ("aggregate", "wr_epochs", "read_inflations"),
    ("aggregate", "wr_epochs", "read_deflations"),
    ("aggregate", "wr_epochs", "read_vector_locations"),
    ("aggregate", "wr_epochs", "detector_bytes"),
    # wr_sampling is present only when the run sampled (rate < 1); the
    # unsampled CI corpus run has it absent on both sides, which compares
    # equal (None == None) and stays silent.
    ("aggregate", "wr_sampling", "rate_ppm"),
    ("aggregate", "wr_sampling", "seen", "total"),
    ("aggregate", "wr_sampling", "sampled", "total"),
    ("aggregate", "wr_sampling", "dropped", "total"),
    ("aggregate", "wr_sampling", "passes", "cold"),
    ("aggregate", "wr_sampling", "passes", "hot"),
    ("aggregate", "wr_sampling", "hot_locations"),
    ("aggregate", "phases", "detect", "virtual_us"),
    ("aggregate", "phases", "detect", "entries"),
    ("aggregate", "wr_prediction", "shb", "candidates"),
    ("aggregate", "wr_prediction", "shb", "observed_matched"),
    ("aggregate", "wr_prediction", "shb", "predicted", "total"),
    ("aggregate", "wr_prediction", "wcp", "candidates"),
    ("aggregate", "wr_prediction", "wcp", "observed_matched"),
    ("aggregate", "wr_prediction", "wcp", "predicted", "total"),
    ("aggregate", "wr_prediction", "wcp", "dropped_edges"),
    ("aggregate", "races_raw", "total"),
    ("aggregate", "races_raw", "html"),
    ("aggregate", "races_raw", "function"),
    ("aggregate", "races_raw", "variable"),
    ("aggregate", "races_raw", "event_dispatch"),
    ("aggregate", "races_filtered", "total"),
    ("aggregate", "filter_attrition", "input"),
    ("aggregate", "filter_attrition", "kept"),
    ("filtered_totals", "total"),
    ("static_precision", "predicted"),
    ("static_precision", "confirmed"),
    ("static_precision", "refuted"),
    ("static_precision", "refuted_by_guards"),
    ("static_precision", "by_class", "unguarded", "predicted"),
    ("static_precision", "by_class", "guarded_one_side", "predicted"),
    ("static_precision", "by_class", "guarded_both_sides", "predicted"),
    ("static_precision", "by_class", "guarded_both_sides", "refuted"),
    ("triage", "signatures"),
    ("triage", "occurrences"),
]


def lookup(doc, path):
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def load(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"error: cannot load {path}: {err}")
    if doc.get("schema") != 1 or doc.get("kind") != "corpus":
        sys.exit(f"error: {path} is not a schema-1 corpus report")
    return doc


def main(argv):
    if len(argv) != 3:
        sys.exit(f"usage: {argv[0]} BASELINE.json CURRENT.json")
    baseline = load(argv[1])
    current = load(argv[2])

    drifted = 0
    rows = [(("sites (count)",), len(baseline.get("sites", [])),
             len(current.get("sites", [])))]
    rows += [(p, lookup(baseline, p), lookup(current, p))
             for p in HEADLINE_PATHS]
    for path, base, cur in rows:
        name = ".".join(str(p) for p in path)
        if base == cur:
            continue
        drifted += 1
        print(f"WARNING: {name}: baseline={base} current={cur}")

    if drifted:
        print(f"\n{drifted} headline counter(s) drifted from {argv[1]}.")
        print("If intentional, regenerate the baseline in this PR:")
        print("  ./build/tools/webracer-cli corpus --json "
              "bench/baseline.json")
    else:
        print(f"OK: headline counters match {argv[1]}")
    return 0  # Warn-only by design.


if __name__ == "__main__":
    sys.exit(main(sys.argv))
